package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
)

func usersDB(t *testing.T) *gmdj.DB {
	t.Helper()
	db := gmdj.Open()
	db.MustCreateTable("users",
		gmdj.Col("name", gmdj.String), gmdj.Col("ip", gmdj.String), gmdj.Col("score", gmdj.Int))
	db.MustInsert("users",
		[]any{"ann", "10.0.0.1", int64(10)},
		[]any{"bob", "10.0.0.2", int64(20)},
		[]any{"cat", "10.0.0.1", int64(30)},
	)
	return db
}

func post(t *testing.T, srv *httptest.Server, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeErr(t *testing.T, raw []byte) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body is not JSON: %v: %s", err, raw)
	}
	return e
}

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		err       error
		kind      string
		exit      int
		status    int
		retryable bool
	}{
		{nil, "ok", 0, http.StatusOK, false},
		{govern.ErrTimeout, "timeout", 3, http.StatusGatewayTimeout, false},
		{govern.ErrCanceled, "canceled", 4, StatusClientClosedRequest, false},
		{govern.ErrRowBudget, "row_budget", 5, http.StatusUnprocessableEntity, false},
		{govern.ErrMemBudget, "mem_budget", 6, http.StatusServiceUnavailable, true},
		{mem.ErrAdmissionTimeout, "admission_timeout", 9, http.StatusTooManyRequests, true},
		{mem.ErrPoolClosed, "closed", 10, http.StatusServiceUnavailable, false},
		{ErrDraining, "unavailable", 11, http.StatusServiceUnavailable, true},
		{govern.ErrInjected, "unavailable", 11, http.StatusServiceUnavailable, true},
		{govern.ErrInternal, "internal", 7, http.StatusInternalServerError, false},
		{gmdj.ErrSegmentCorrupt, "segment_corrupt", 13, http.StatusInternalServerError, false},
		{errors.New("parse error"), "query", 1, http.StatusBadRequest, false},
	}
	known := map[string]bool{}
	for _, k := range KnownKinds() {
		known[k] = true
	}
	for _, c := range cases {
		// Wrapping must not change the classification.
		err := c.err
		if err != nil {
			err = fmt.Errorf("outer: %w", err)
		}
		cl := Classify(err)
		if cl.Kind != c.kind || cl.ExitCode != c.exit || cl.HTTPStatus != c.status || cl.Retryable != c.retryable {
			t.Errorf("Classify(%v) = %+v, want {%s %d %d %v}", c.err, cl, c.kind, c.exit, c.status, c.retryable)
		}
		if !known[cl.Kind] {
			t.Errorf("Classify(%v) kind %q not in KnownKinds", c.err, cl.Kind)
		}
	}
}

func TestParseQuota(t *testing.T) {
	q, err := ParseQuota("inflight=8,mem=32MiB,admission=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxInFlight != 8 || q.MemBytes != 32<<20 || q.Admission != 500*time.Millisecond {
		t.Fatalf("q = %+v", q)
	}
	// The memory ceiling folds into the in-flight cap.
	tight := Quota{MaxInFlight: 100, MemBytes: 3 * mem.DefaultQueryReserve}
	if got := tight.effectiveMax(); got != 3 {
		t.Fatalf("effectiveMax = %d, want 3", got)
	}
	for _, bad := range []string{"inflight=0", "inflight=x", "mem=zz", "admission=zz", "nope=1", "inflight"} {
		if _, err := ParseQuota(bad); err == nil {
			t.Errorf("ParseQuota(%q) accepted", bad)
		}
	}
	ts, err := ParseTenants("alice:inflight=8;bob:inflight=2,admission=100ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts["alice"].MaxInFlight != 8 || ts["bob"].Admission != 100*time.Millisecond {
		t.Fatalf("tenants = %+v", ts)
	}
	if _, err := ParseTenants("noquota"); err == nil {
		t.Error("ParseTenants accepted entry without colon")
	}
}

func TestGateFIFOAndShed(t *testing.T) {
	g := newGate("t", Quota{MaxInFlight: 1, Admission: 80 * time.Millisecond})
	release, err := g.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second entry sheds at the admission deadline with a typed error.
	start := time.Now()
	if _, err := g.Enter(context.Background()); !errors.Is(err, mem.ErrAdmissionTimeout) {
		t.Fatalf("queued Enter = %v, want ErrAdmissionTimeout", err)
	} else if time.Since(start) > 5*time.Second {
		t.Fatal("shed took far longer than the admission deadline")
	}
	// Context cancellation releases the queue slot with a typed error.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Enter(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("canceled Enter = %v, want ErrCanceled", err)
	}
	// Releasing grants the next FIFO waiter.
	got := make(chan error, 1)
	go func() {
		r, err := g.Enter(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	if err := <-got; err != nil {
		t.Fatalf("waiter after release: %v", err)
	}
	st := g.stats()
	if st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want Shed=1 Admitted=2", st)
	}
}

func TestGateCloseShedsWaiters(t *testing.T) {
	g := newGate("t", Quota{MaxInFlight: 1, Admission: 10 * time.Second})
	if _, err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := g.Enter(context.Background())
			errs <- err
		}()
	}
	// Wait until all are queued, then close.
	deadline := time.Now().Add(5 * time.Second)
	for g.stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d queued", g.stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	g.close()
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, ErrDraining) {
			t.Fatalf("drained waiter got %v, want ErrDraining", err)
		}
	}
	if _, err := g.Enter(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Enter on closed gate = %v, want ErrDraining", err)
	}
}

func TestServeQueryOK(t *testing.T) {
	db := usersDB(t)
	s := NewServer(db, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, raw := post(t, srv, "", map[string]any{
		"sql": `SELECT name, score FROM users WHERE score > 15 ORDER BY score`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 2 || len(qr.Rows) != 2 || qr.Rows[0][0] != "bob" {
		t.Fatalf("response = %+v", qr)
	}
	if qr.Tenant != DefaultTenant {
		t.Fatalf("tenant = %q", qr.Tenant)
	}

	// Parameterized path goes through a prepared statement; JSON floats
	// normalize to int64 for integer columns.
	resp, raw = post(t, srv, "alice", map[string]any{
		"sql":  `SELECT name FROM users WHERE ip = ? AND score > ?`,
		"args": []any{"10.0.0.1", 15},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("args status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 1 || qr.Rows[0][0] != "cat" || qr.Tenant != "alice" {
		t.Fatalf("args response = %+v", qr)
	}
}

func TestServeUsageErrors(t *testing.T) {
	db := usersDB(t)
	s := NewServer(db, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Wrong method.
	resp, err := srv.Client().Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}

	for name, body := range map[string]any{
		"empty sql":    map[string]any{"sql": "  "},
		"bad strategy": map[string]any{"sql": "SELECT name FROM users", "strategy": "quantum"},
	} {
		resp, raw := post(t, srv, "", body)
		e := decodeErr(t, raw)
		if resp.StatusCode != http.StatusBadRequest || e.Kind != "usage" || e.ExitCode != ExitUsage {
			t.Errorf("%s: status=%d body=%+v, want 400/usage/2", name, resp.StatusCode, e)
		}
	}

	// A failing query (unknown table) is the client's query at fault,
	// not a malformed request: kind "query", exit 1.
	resp2, raw := post(t, srv, "", map[string]any{"sql": "SELECT x FROM nope"})
	e := decodeErr(t, raw)
	if resp2.StatusCode != http.StatusBadRequest || e.Kind != "query" || e.ExitCode != ExitErr {
		t.Fatalf("unknown table: status=%d body=%+v", resp2.StatusCode, e)
	}
}

func TestServeFaultSites(t *testing.T) {
	db := usersDB(t)
	body := map[string]any{"sql": "SELECT name FROM users"}

	t.Run("accept error", func(t *testing.T) {
		s := NewServer(db, Config{Faults: govern.NewInjector(map[string]string{SiteAccept: "error"})})
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		resp, raw := post(t, srv, "", body)
		e := decodeErr(t, raw)
		if resp.StatusCode != http.StatusServiceUnavailable || e.Kind != "unavailable" || !e.Retryable {
			t.Fatalf("status=%d body=%+v, want 503/unavailable/retryable", resp.StatusCode, e)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("no Retry-After header on injected accept fault")
		}
	})

	t.Run("write error", func(t *testing.T) {
		s := NewServer(db, Config{Faults: govern.NewInjector(map[string]string{SiteWrite: "error"})})
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		resp, raw := post(t, srv, "", body)
		e := decodeErr(t, raw)
		if resp.StatusCode != http.StatusServiceUnavailable || e.Kind != "unavailable" {
			t.Fatalf("status=%d body=%+v, want 503/unavailable", resp.StatusCode, e)
		}
	})

	t.Run("accept panic recovered", func(t *testing.T) {
		s := NewServer(db, Config{Faults: govern.NewInjector(map[string]string{SiteAccept: "panic"})})
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		resp, raw := post(t, srv, "", body)
		e := decodeErr(t, raw)
		if resp.StatusCode != http.StatusInternalServerError || e.Kind != "internal" || e.ExitCode != ExitInternal {
			t.Fatalf("status=%d body=%+v, want 500/internal/7", resp.StatusCode, e)
		}
	})

	t.Run("accept error rate", func(t *testing.T) {
		// @2 faults every second request: out of 4, exactly 2 fail.
		s := NewServer(db, Config{Faults: govern.NewInjector(map[string]string{SiteAccept: "error@2"})})
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		var fails int
		for i := 0; i < 4; i++ {
			resp, _ := post(t, srv, "", body)
			if resp.StatusCode == http.StatusServiceUnavailable {
				fails++
			}
		}
		if fails != 2 {
			t.Fatalf("fails = %d, want 2 of 4 with error@2", fails)
		}
	})
}

func TestServeDrainRejects(t *testing.T) {
	db := usersDB(t)
	s := NewServer(db, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.StartDrain()
	resp, raw := post(t, srv, "", map[string]any{"sql": "SELECT name FROM users"})
	e := decodeErr(t, raw)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Kind != "unavailable" || e.ExitCode != ExitUnavailable {
		t.Fatalf("status=%d body=%+v", resp.StatusCode, e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on drain rejection")
	}

	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable || h.State != "draining" {
		t.Fatalf("healthz = %d %+v", hresp.StatusCode, h)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain with nothing in flight: %v", err)
	}
}

func TestServeTenantQuotaShed(t *testing.T) {
	// exec.scan delay makes every query slow enough to hold its slot
	// while the second request queues and sheds.
	t.Setenv(govern.EnvFaults, "exec.scan=delay:400ms")
	db := usersDB(t)
	s := NewServer(db, Config{
		Tenants: map[string]Quota{
			"small": {MaxInFlight: 1, Admission: 50 * time.Millisecond},
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := map[string]any{"sql": "SELECT name FROM users"}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, srv, "small", body)
	}()
	// Wait for the first query to hold the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, raw := post(t, srv, "small", body)
	e := decodeErr(t, raw)
	if resp.StatusCode != http.StatusTooManyRequests || e.Kind != "admission_timeout" || e.ExitCode != ExitAdmission {
		t.Fatalf("status=%d body=%+v, want 429/admission_timeout/9", resp.StatusCode, e)
	}
	if resp.Header.Get("Retry-After") == "" || e.RetryAfterMS <= 0 {
		t.Fatalf("shed response lacks retry hints: header=%q body=%+v", resp.Header.Get("Retry-After"), e)
	}
	// Other tenants are unaffected by the saturated one.
	resp2, raw2 := post(t, srv, "big", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d: %s", resp2.StatusCode, raw2)
	}
	wg.Wait()
	var found bool
	for _, ts := range s.Stats().Tenants {
		if ts.Tenant == "small" {
			found = true
			if ts.Shed != 1 {
				t.Fatalf("small tenant stats = %+v, want Shed=1", ts)
			}
		}
	}
	if !found {
		t.Fatal("small tenant missing from stats")
	}
}

func TestServeDrainHardCancelsInFlight(t *testing.T) {
	// Queries that would run for 10s without intervention: drain's hard
	// phase must cancel them through their governor contexts.
	t.Setenv(govern.EnvFaults, "exec.scan=delay:10s")
	db := usersDB(t)
	s := NewServer(db, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 4
	type result struct {
		status int
		body   errorResponse
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, raw := post(t, srv, "", map[string]any{"sql": "SELECT name FROM users"})
			results <- result{resp.StatusCode, decodeErr(t, raw)}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d queries in flight", s.InFlight(), n)
		}
		time.Sleep(time.Millisecond)
	}

	// A 100ms budget is far less than the 10s the queries would take:
	// the soft phase expires and the hard phase must fire.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("drain took %v; hard cancel did not fire", elapsed)
	}
	for i := 0; i < n; i++ {
		r := <-results
		if r.body.Kind != "canceled" {
			t.Fatalf("canceled query got kind %q (status %d), want canceled", r.body.Kind, r.status)
		}
		if r.status != StatusClientClosedRequest {
			t.Fatalf("canceled query status = %d, want 499", r.status)
		}
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight after drain = %d", s.InFlight())
	}
	if got := s.Stats().HardCanceled; got != n {
		t.Fatalf("hard canceled = %d, want %d", got, n)
	}
}

func TestServeTimeoutClamp(t *testing.T) {
	t.Setenv(govern.EnvFaults, "exec.scan=delay:5s")
	db := usersDB(t)
	s := NewServer(db, Config{MaxTimeout: 100 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The client asks for 60s; MaxTimeout clamps it to 100ms and the
	// delayed scan times out with the typed taxonomy error.
	resp, raw := post(t, srv, "", map[string]any{
		"sql":        "SELECT name FROM users",
		"timeout_ms": 60000,
	})
	e := decodeErr(t, raw)
	if resp.StatusCode != http.StatusGatewayTimeout || e.Kind != "timeout" || e.ExitCode != ExitTimeout {
		t.Fatalf("status=%d body=%+v, want 504/timeout/3", resp.StatusCode, e)
	}
}

func TestServeAdminEndpoints(t *testing.T) {
	db := usersDB(t)
	db.EnableObservability(gmdj.ObsConfig{})
	s := NewServer(db, Config{Admin: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post(t, srv, "", map[string]any{"sql": "SELECT name FROM users"})
	for _, path := range []string{"/debug/serve", "/debug/olap/queries", "/debug/olap/hist", "/debug/olap/mem"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
	st := s.Stats()
	if st.Accepted < 1 || st.Completed < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := st.Latency["http_ns.all"]; !ok {
		t.Fatalf("no http_ns.all histogram in %v", st.Latency)
	}

	// Without Admin, the debug surface is absent.
	s2 := NewServer(db, Config{})
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/debug/serve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/serve without -admin = %d, want 404", resp.StatusCode)
	}
}

func TestServeConcurrentStorm(t *testing.T) {
	// A miniature cancellation storm: concurrent clients, a fraction
	// aborting early, serve-site faults at a 1-in-4 rate. Every outcome
	// must be 200 or a typed error kind.
	db := usersDB(t)
	s := NewServer(db, Config{
		Faults: govern.NewInjector(map[string]string{SiteAccept: "error@4"}),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	known := map[string]bool{}
	for _, k := range KnownKinds() {
		known[k] = true
	}
	const workers = 32
	var wg sync.WaitGroup
	bad := make(chan string, workers*8)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if (w+i)%10 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
				}
				raw, _ := json.Marshal(map[string]any{"sql": "SELECT name, score FROM users ORDER BY score"})
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/query", bytes.NewReader(raw))
				resp, err := srv.Client().Do(req)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					// Client-side abort: the transport error is the
					// client's, not a server taxonomy violation.
					if strings.Contains(err.Error(), "context deadline exceeded") {
						continue
					}
					bad <- err.Error()
					continue
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					continue
				}
				var e errorResponse
				if json.Unmarshal(buf.Bytes(), &e) != nil || !known[e.Kind] {
					bad <- fmt.Sprintf("status %d body %s", resp.StatusCode, buf.String())
				}
			}
		}(w)
	}
	wg.Wait()
	close(bad)
	for b := range bad {
		t.Errorf("non-typed outcome: %s", b)
	}
}
