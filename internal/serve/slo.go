package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// Per-tenant service-level objectives. An SLO states what the server
// owes a tenant: an availability target over requests the *server* is
// responsible for, and optionally a p99 latency bound. The serving
// layer does not enforce SLOs — it publishes targets, observed values,
// and error-budget burn on /metrics so the load driver (and any real
// alerting stack) can assert on them.
type SLO struct {
	// Availability is the target fraction of requests free of
	// server-attributed failure, in (0, 1), e.g. 0.99.
	Availability float64
	// P99 is the target 99th-percentile request latency. Zero means no
	// latency objective.
	P99 time.Duration
}

// serverFailureKinds lists the taxonomy kinds billed against the
// availability error budget. Client-attributed outcomes — usage
// errors, query errors, client cancelation, client-chosen timeouts,
// row budgets — do not burn the server's budget.
var serverFailureKinds = []string{
	"admission_timeout", "closed", "internal", "mem_budget",
	"segment_corrupt", "spill_io", "unavailable",
}

// ServerFailureKinds returns the taxonomy kinds that count against a
// tenant's availability SLO (sorted copy).
func ServerFailureKinds() []string {
	return append([]string(nil), serverFailureKinds...)
}

// ParseSLOs parses a -slo flag value of the form
//
//	tenant:avail=0.99,p99=250ms;other:avail=0.995
//
// Tenants are separated by ';', objectives within a tenant by ','.
// At least one objective is required per tenant; avail must be in
// (0, 1) and p99 positive.
func ParseSLOs(spec string) (map[string]SLO, error) {
	out := map[string]SLO{}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tenant, objs, ok := strings.Cut(part, ":")
		tenant = strings.TrimSpace(tenant)
		if !ok || tenant == "" {
			return nil, fmt.Errorf("slo %q: want tenant:objectives", part)
		}
		if _, dup := out[tenant]; dup {
			return nil, fmt.Errorf("slo: tenant %q declared twice", tenant)
		}
		var slo SLO
		for _, obj := range strings.Split(objs, ",") {
			obj = strings.TrimSpace(obj)
			if obj == "" {
				continue
			}
			key, val, ok := strings.Cut(obj, "=")
			if !ok {
				return nil, fmt.Errorf("slo %q: objective %q: want key=value", tenant, obj)
			}
			switch strings.TrimSpace(key) {
			case "avail":
				f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
				if err != nil || f <= 0 || f >= 1 {
					return nil, fmt.Errorf("slo %q: avail %q: want a fraction in (0,1)", tenant, val)
				}
				slo.Availability = f
			case "p99":
				d, err := time.ParseDuration(strings.TrimSpace(val))
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("slo %q: p99 %q: want a positive duration", tenant, val)
				}
				slo.P99 = d
			default:
				return nil, fmt.Errorf("slo %q: unknown objective %q (want avail or p99)", tenant, key)
			}
		}
		if slo.Availability == 0 && slo.P99 == 0 {
			return nil, fmt.Errorf("slo %q: no objectives", tenant)
		}
		out[tenant] = slo
	}
	return out, nil
}

// sloReport is one tenant's objective evaluated against its funnel
// counters at a point in time.
type sloReport struct {
	tenant       string
	slo          SLO
	requests     int64
	failures     int64   // server-attributed
	availability float64 // observed; 1 when no traffic yet
	burn         float64 // error-budget burn rate; see below
	p99          time.Duration
}

// evalSLO computes one tenant's report from its metrics. Error-budget
// burn is the classic ratio: observed error rate over allowed error
// rate, so burn 1.0 means spending the budget exactly as fast as the
// objective tolerates and burn > 1 means the SLO is being violated.
func evalSLO(tenant string, slo SLO, tm *tenantMetrics) sloReport {
	rep := sloReport{tenant: tenant, slo: slo, availability: 1}
	for _, k := range serverFailureKinds {
		rep.failures += tm.responses[k].Load()
	}
	// Evaluate over finished requests, not funnel entries, so an
	// in-flight request never counts as a failure.
	for _, c := range tm.responses {
		rep.requests += c.Load()
	}
	if rep.requests > 0 {
		rep.availability = 1 - float64(rep.failures)/float64(rep.requests)
	}
	if slo.Availability > 0 {
		rep.burn = (1 - rep.availability) / (1 - slo.Availability)
	}
	snap := tm.duration.Snapshot()
	rep.p99 = time.Duration(snap.P99)
	return rep
}

// sloReports evaluates every configured SLO against the current
// funnel counters, sorted by tenant for deterministic exposition.
// SLO tenants are pre-registered at server construction so they hold
// label slots from the start; a tenant folded into the _other label
// (SLOs declared past the cap) is evaluated against that shared
// series, which is almost never what an operator wants — keep the cap
// at least as large as the SLO list.
func (s *Server) sloReports() []sloReport {
	tenants := make([]string, 0, len(s.cfg.SLOs))
	for t := range s.cfg.SLOs {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	reps := make([]sloReport, 0, len(tenants))
	for _, t := range tenants {
		tm := s.metrics.get(s.metrics.labelFor(t))
		reps = append(reps, evalSLO(t, s.cfg.SLOs[t], tm))
	}
	return reps
}

// promCollectSLO appends the SLO families: targets, observed values,
// and burn rate, one series per tenant with a declared objective.
func (s *Server) promCollectSLO(p *obs.PromWriter) {
	for _, rep := range s.sloReports() {
		lb := map[string]string{"tenant": rep.tenant}
		if rep.slo.Availability > 0 {
			p.Gauge("olap_slo_availability_target", "Configured availability objective, by tenant.", lb, rep.slo.Availability)
			p.Gauge("olap_slo_availability", "Observed availability over server-attributed failures, by tenant.", lb, rep.availability)
			p.Gauge("olap_slo_error_budget_burn", "Observed error rate over allowed error rate; >1 means the SLO is violated.", lb, rep.burn)
		}
		if rep.slo.P99 > 0 {
			p.Gauge("olap_slo_p99_target_seconds", "Configured p99 latency objective, by tenant.", lb, rep.slo.P99.Seconds())
			p.Gauge("olap_slo_p99_seconds", "Observed p99 request latency, by tenant.", lb, rep.p99.Seconds())
		}
	}
}
