package serve

import (
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// Per-tenant request accounting behind /metrics. The cardinality
// problem is handled at the source: the first MaxTenantLabels distinct
// tenants each get their own label value, assigned first-come and
// never revoked (so each labeled series stays monotonic); every tenant
// beyond the cap is folded into the OtherTenantLabel series. A scrape
// therefore has a hard upper bound on series count no matter how many
// tenant names a hostile client invents.

// DefaultMaxTenantLabels bounds distinct tenant label values on
// /metrics when Config.MaxTenantLabels is unset.
const DefaultMaxTenantLabels = 32

// OtherTenantLabel is the fold-over label value for tenants beyond the
// cardinality cap.
const OtherTenantLabel = "_other"

// tenantMetrics is one label value's counters. The response counters
// are pre-allocated for every taxonomy kind so increments are
// lock-free and a scrape sees a stable kind set.
type tenantMetrics struct {
	requests  atomic.Int64
	responses map[string]*atomic.Int64
	duration  *obs.Histogram
}

func newTenantMetrics() *tenantMetrics {
	tm := &tenantMetrics{responses: map[string]*atomic.Int64{}, duration: obs.NewHistogram()}
	for _, k := range KnownKinds() {
		tm.responses[k] = &atomic.Int64{}
	}
	return tm
}

func (tm *tenantMetrics) countResponse(kind string, elapsed time.Duration) {
	c := tm.responses[kind]
	if c == nil {
		// A kind outside KnownKinds would be a taxonomy bug; bill it as
		// internal rather than dropping the sample (reconciliation —
		// requests == sum of responses — must survive bugs too).
		c = tm.responses["internal"]
	}
	c.Add(1)
	tm.duration.RecordDuration(elapsed)
}

// metricsRegistry maps tenant names onto bounded label values.
type metricsRegistry struct {
	max int

	mu       sync.Mutex
	byLabel  map[string]*tenantMetrics
	overflow atomic.Int64 // requests folded into OtherTenantLabel
}

func newMetricsRegistry(maxLabels int) *metricsRegistry {
	if maxLabels <= 0 {
		maxLabels = DefaultMaxTenantLabels
	}
	m := &metricsRegistry{max: maxLabels, byLabel: map[string]*tenantMetrics{}}
	// The fold-over series exists from the start (outside the cap).
	m.byLabel[OtherTenantLabel] = newTenantMetrics()
	return m
}

// tenant resolves a tenant name to its label value and counters,
// assigning a new label when under the cap and folding into
// OtherTenantLabel otherwise.
func (m *metricsRegistry) tenant(name string) (string, *tenantMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tm := m.byLabel[name]; tm != nil {
		return name, tm
	}
	if len(m.byLabel)-1 < m.max && name != OtherTenantLabel { // -1: the fold-over series is free
		tm := newTenantMetrics()
		m.byLabel[name] = tm
		return name, tm
	}
	m.overflow.Add(1)
	return OtherTenantLabel, m.byLabel[OtherTenantLabel]
}

// labelFor maps a tenant name without assigning a new label (scrape
// paths must not grow the registry).
func (m *metricsRegistry) labelFor(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.byLabel[name] != nil {
		return name
	}
	return OtherTenantLabel
}

// labels returns the assigned label values, sorted for deterministic
// exposition order.
func (m *metricsRegistry) labels() []string {
	m.mu.Lock()
	out := make([]string, 0, len(m.byLabel))
	for l := range m.byLabel {
		out = append(out, l)
	}
	m.mu.Unlock()
	sort.Strings(out)
	return out
}

func (m *metricsRegistry) get(label string) *tenantMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byLabel[label]
}

// promCollect appends the serving-layer metric families. Everything
// here is deterministic given the registry state (sorted label and
// kind order) — the golden exposition test depends on that.
func (s *Server) promCollect(p *obs.PromWriter) {
	st := s.Stats()
	draining := 0.0
	if st.State != "accepting" {
		draining = 1
	}
	p.Gauge("olap_draining", "1 while the server is draining or stopped.", nil, draining)
	p.Gauge("olap_inflight", "Admitted queries currently executing.", nil, float64(st.InFlight))
	p.Counter("olap_accepted_total", "Queries admitted past the tenant gate.", nil, st.Accepted)
	p.Counter("olap_completed_total", "Admitted queries that finished (any outcome).", nil, st.Completed)
	p.Counter("olap_rejected_total", "Requests rejected because the server was draining.", nil, st.Rejected)
	p.Counter("olap_hard_cancels_total", "In-flight queries hard-canceled during drain.", nil, st.HardCanceled)
	p.Counter("olap_faults_fired_total", "Injected serve-site faults that fired.", nil, st.FaultsFired)
	p.Counter("olap_panics_recovered_total", "Handler panics recovered into typed errors.", nil, s.panics.Load())

	labels := s.metrics.labels()
	p.Gauge("olap_tenant_labels", "Distinct tenant label values assigned (cardinality cap diagnostics).", nil, float64(len(labels)))
	p.Counter("olap_tenant_label_overflow_total", "Requests folded into the _other tenant label.", nil, s.metrics.overflow.Load())

	kinds := append([]string(nil), KnownKinds()...)
	sort.Strings(kinds)
	for _, label := range labels {
		tm := s.metrics.get(label)
		lb := map[string]string{"tenant": label}
		p.Counter("olap_requests_total", "Requests entering the handler, by tenant.", lb, tm.requests.Load())
		for _, k := range kinds {
			p.Counter("olap_responses_total", "Responses by tenant and taxonomy kind (sums to olap_requests_total per tenant).",
				map[string]string{"tenant": label, "kind": k}, tm.responses[k].Load())
		}
		p.Histogram("olap_request_duration_seconds", "Request wall time from handler entry to response, by tenant.",
			lb, tm.duration.Snapshot(), 1e-9)
	}

	// Gate (admission) state, folded through the same label cap. More
	// than one gate can share a label; counters sum.
	type gateAgg struct {
		inFlight, queued        int
		admitted, shed, drained int64
		maxInFlight             int
	}
	agg := map[string]*gateAgg{}
	for _, ts := range st.Tenants {
		label := s.metrics.labelFor(ts.Tenant)
		a := agg[label]
		if a == nil {
			a = &gateAgg{}
			agg[label] = a
		}
		a.inFlight += ts.InFlight
		a.queued += ts.Queued
		a.admitted += ts.Admitted
		a.shed += ts.Shed
		a.drained += ts.Drained
		a.maxInFlight += ts.MaxInFlight
	}
	gateLabels := make([]string, 0, len(agg))
	for l := range agg {
		gateLabels = append(gateLabels, l)
	}
	sort.Strings(gateLabels)
	for _, label := range gateLabels {
		a := agg[label]
		lb := map[string]string{"tenant": label}
		p.Gauge("olap_tenant_inflight", "Queries holding an admission slot, by tenant.", lb, float64(a.inFlight))
		p.Gauge("olap_tenant_queued", "Requests waiting in the admission queue, by tenant.", lb, float64(a.queued))
		p.Gauge("olap_tenant_max_inflight", "Admission slot capacity, by tenant.", lb, float64(a.maxInFlight))
		p.Counter("olap_tenant_admitted_total", "Requests granted an admission slot, by tenant.", lb, a.admitted)
		p.Counter("olap_tenant_shed_total", "Requests shed at the admission deadline, by tenant.", lb, a.shed)
		p.Counter("olap_tenant_drained_total", "Queued requests shed by drain, by tenant.", lb, a.drained)
	}

	s.promCollectSLO(p)
	s.promCollectProfile(p)
}

// promCollectProfile appends the continuous-profiling families: CPU
// seconds attributed per tenant out of the cadence CPU captures, heap
// in use per tenant (each in-flight query's tracked bytes summed by
// tenant), and the profiler/recorder bookkeeping. All tenant series
// ride the same cardinality cap as the funnel. Absent without an
// attached profiler — attribution needs the captures.
func (s *Server) promCollectProfile(p *obs.PromWriter) {
	if s.profiler != nil {
		cpu := map[string]float64{}
		for tenant, secs := range s.profiler.TenantCPU() {
			cpu[s.metrics.labelFor(tenant)] += secs
		}
		cpuLabels := make([]string, 0, len(cpu))
		for l := range cpu {
			cpuLabels = append(cpuLabels, l)
		}
		sort.Strings(cpuLabels)
		for _, label := range cpuLabels {
			p.CounterF("olap_tenant_cpu_seconds_total",
				"CPU seconds attributed to the tenant by pprof labels in the cadence CPU captures.",
				map[string]string{"tenant": label}, cpu[label])
		}

		heap := map[string]float64{}
		for _, q := range s.db.LiveQueries() {
			tenant := q.Tenant
			if tenant == "" {
				tenant = DefaultTenant
			}
			heap[s.metrics.labelFor(tenant)] += float64(q.Bytes)
		}
		heapLabels := make([]string, 0, len(heap))
		for l := range heap {
			heapLabels = append(heapLabels, l)
		}
		sort.Strings(heapLabels)
		for _, label := range heapLabels {
			p.Gauge("olap_tenant_heap_inuse_bytes",
				"Tracked bytes materialized by the tenant's in-flight queries.",
				map[string]string{"tenant": label}, heap[label])
		}

		st := s.profiler.Stats()
		kinds := make([]string, 0, len(st.Captures))
		for k := range st.Captures {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			p.Counter("olap_profiles_captured_total", "Profiles written into the on-disk ring, by kind.",
				map[string]string{"kind": kind}, st.Captures[kind])
		}
		p.Counter("olap_profile_errors_total", "Profile captures that failed.", nil, st.Errors)
		p.Gauge("olap_profile_ring_bytes", "Bytes held by the on-disk profile ring.", nil, float64(st.RingBytes))
	}
	if s.recorder != nil {
		rs := s.recorder.Stats()
		p.Counter("olap_incident_bundles_total", "Incident bundles written by the flight recorder.", nil, rs.Written)
		p.Counter("olap_incident_triggers_total", "Flight-recorder trigger firings (written + suppressed).", nil, rs.Triggered)
		p.Counter("olap_incident_suppressed_total", "Trigger firings suppressed by the bundle rate limit.", nil, rs.Suppressed)
	}
}

// writePromText renders the full exposition: the serving families,
// the engine-level families (gmdj_*), and two process gauges. Shared
// by /metrics and the flight recorder's metrics.prom bundle member.
func (s *Server) writePromText(w io.Writer) error {
	p := obs.NewPromWriter()
	s.promCollect(p)
	s.db.PromCollect(p)
	p.Gauge("process_goroutines", "Live goroutines.", nil, float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Gauge("process_heap_alloc_bytes", "Bytes of allocated heap objects.", nil, float64(ms.HeapAlloc))
	if err := p.Err(); err != nil {
		return err
	}
	_, err := p.WriteTo(w)
	return err
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := obs.NewPromWriter()
	s.promCollect(p)
	s.db.PromCollect(p)
	p.Gauge("process_goroutines", "Live goroutines.", nil, float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Gauge("process_heap_alloc_bytes", "Bytes of allocated heap objects.", nil, float64(ms.HeapAlloc))
	if err := p.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_, _ = p.WriteTo(w)
}
