package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/obs"
)

// Quota is one tenant's admission envelope. The zero Quota selects the
// defaults below.
type Quota struct {
	// MaxInFlight caps the tenant's concurrent queries; requests beyond
	// it queue FIFO for a slot. <= 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// MemBytes is the tenant's memory-reservation ceiling. When the DB
	// runs with a memory pool, each admitted query seeds a reservation
	// of mem.DefaultQueryReserve bytes, so the ceiling translates to an
	// additional in-flight cap of MemBytes/DefaultQueryReserve — the
	// gate enforces min(MaxInFlight, that cap). 0 = no memory ceiling.
	MemBytes int64
	// Admission bounds how long a request may queue for a slot before
	// being shed with an error wrapping mem.ErrAdmissionTimeout (HTTP
	// 429 + Retry-After). <= 0 selects DefaultAdmission.
	Admission time.Duration
}

// Defaults for the zero Quota.
const (
	DefaultMaxInFlight = 64
	DefaultAdmission   = 2 * time.Second
)

// effectiveMax folds the memory ceiling into the in-flight cap.
func (q Quota) effectiveMax() int {
	max := q.MaxInFlight
	if max <= 0 {
		max = DefaultMaxInFlight
	}
	if q.MemBytes > 0 {
		byMem := int(q.MemBytes / mem.DefaultQueryReserve)
		if byMem < 1 {
			byMem = 1
		}
		if byMem < max {
			max = byMem
		}
	}
	return max
}

func (q Quota) admission() time.Duration {
	if q.Admission <= 0 {
		return DefaultAdmission
	}
	return q.Admission
}

// ParseQuota parses a quota spec: comma-separated key=value with keys
// inflight (int), mem (bytes, KiB/MiB/GiB suffixes), and admission
// (Go duration), e.g. "inflight=8,mem=32MiB,admission=500ms".
func ParseQuota(spec string) (Quota, error) {
	var q Quota
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return q, fmt.Errorf("serve: quota spec %q is not key=value", part)
		}
		switch k {
		case "inflight":
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 1 {
				return q, fmt.Errorf("serve: quota inflight %q: want integer >= 1", v)
			}
			q.MaxInFlight = n
		case "mem":
			n, err := mem.ParseBytes(v)
			if err != nil {
				return q, fmt.Errorf("serve: quota mem: %w", err)
			}
			q.MemBytes = n
		case "admission":
			d, err := time.ParseDuration(v)
			if err != nil {
				return q, fmt.Errorf("serve: quota admission: %w", err)
			}
			q.Admission = d
		default:
			return q, fmt.Errorf("serve: unknown quota key %q", k)
		}
	}
	return q, nil
}

// ParseTenants parses a multi-tenant spec: semicolon-separated
// "name:quota" entries, e.g. "alice:inflight=8,mem=32MiB;bob:inflight=2".
func ParseTenants(spec string) (map[string]Quota, error) {
	out := map[string]Quota{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, qspec, ok := strings.Cut(entry, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("serve: tenant entry %q is not name:quota", entry)
		}
		q, err := ParseQuota(qspec)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", name, err)
		}
		out[name] = q
	}
	return out, nil
}

// gate is one tenant's FIFO admission queue: a counting semaphore with
// deadline-aware waiters, mirroring mem.Pool's admission discipline at
// the request level so a single tenant saturating its quota queues (and
// eventually sheds) without starving the others.
type gate struct {
	tenant    string
	max       int
	admission time.Duration

	mu       sync.Mutex
	inFlight int
	queue    []*slotWaiter
	closed   bool

	admitted int64
	shed     int64
	drained  int64
	peak     int
}

type slotWaiter struct {
	ch   chan struct{}
	err  error // written under gate.mu before close(ch)
	done bool
}

func newGate(tenant string, q Quota) *gate {
	return &gate{tenant: tenant, max: q.effectiveMax(), admission: q.admission()}
}

// Enter admits one request, blocking FIFO when the tenant is at its
// in-flight cap. It returns the release function for the slot. Shed
// outcomes are typed: admission-deadline expiry wraps
// mem.ErrAdmissionTimeout, request-context cancellation maps through
// the governance taxonomy, and a drain closes the gate with
// ErrDraining.
func (g *gate) Enter(ctx context.Context) (func(), error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("tenant %q: %w", g.tenant, ErrDraining)
	}
	if g.inFlight < g.max && len(g.queue) == 0 {
		g.inFlight++
		g.admitted++
		g.mu.Unlock()
		return g.leave, nil
	}
	w := &slotWaiter{ch: make(chan struct{})}
	g.queue = append(g.queue, w)
	if len(g.queue) > g.peak {
		g.peak = len(g.queue)
	}
	g.mu.Unlock()
	obs.MetricAdd("serve.queued", 1)

	deadline := time.NewTimer(g.admission)
	defer deadline.Stop()
	select {
	case <-w.ch:
		return g.granted(w)
	case <-ctx.Done():
		if g.abandon(w, false) {
			return nil, govern.MapContextErr(ctx.Err())
		}
		<-w.ch
		return g.granted(w)
	case <-deadline.C:
		if g.abandon(w, true) {
			obs.MetricAdd("serve.shed", 1)
			return nil, fmt.Errorf("tenant %q: %w after %v (%d in flight, cap %d)",
				g.tenant, mem.ErrAdmissionTimeout, g.admission, g.snapshotInFlight(), g.max)
		}
		<-w.ch
		return g.granted(w)
	}
}

// granted resolves a waiter whose channel closed: a real slot grant or
// a typed shed from close.
func (g *gate) granted(w *slotWaiter) (func(), error) {
	if w.err != nil {
		return nil, w.err
	}
	return g.leave, nil
}

// abandon removes w from the queue; false means w was already granted
// (or shed) and the caller must consume the channel.
func (g *gate) abandon(w *slotWaiter, timedOut bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.done {
		return false
	}
	w.done = true
	for i, x := range g.queue {
		if x == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	if timedOut {
		g.shed++
	}
	return true
}

// leave releases one slot and grants the queue head if it fits.
func (g *gate) leave() {
	g.mu.Lock()
	g.inFlight--
	if g.inFlight < 0 {
		g.inFlight = 0
	}
	for len(g.queue) > 0 && g.inFlight < g.max {
		w := g.queue[0]
		g.queue = g.queue[1:]
		w.done = true
		g.inFlight++
		g.admitted++
		close(w.ch)
	}
	g.mu.Unlock()
}

// close sheds every queued waiter with ErrDraining and rejects future
// Enter calls. In-flight requests keep their slots until they leave.
func (g *gate) close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	ws := g.queue
	g.queue = nil
	for _, w := range ws {
		w.done = true
		w.err = fmt.Errorf("tenant %q: %w: shed from admission queue", g.tenant, ErrDraining)
		g.drained++
	}
	g.mu.Unlock()
	for _, w := range ws {
		close(w.ch)
	}
}

func (g *gate) snapshotInFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// TenantStats is one tenant's point-in-time admission snapshot.
type TenantStats struct {
	Tenant      string `json:"tenant"`
	MaxInFlight int    `json:"max_in_flight"`
	InFlight    int    `json:"in_flight"`
	Queued      int    `json:"queued"`
	PeakQueued  int    `json:"peak_queued"`
	Admitted    int64  `json:"admitted"`
	Shed        int64  `json:"shed"`
	Drained     int64  `json:"drained"`
}

func (g *gate) stats() TenantStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return TenantStats{
		Tenant:      g.tenant,
		MaxInFlight: g.max,
		InFlight:    g.inFlight,
		Queued:      len(g.queue),
		PeakQueued:  g.peak,
		Admitted:    g.admitted,
		Shed:        g.shed,
		Drained:     g.drained,
	}
}
