package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// storageFamilies is every olap_storage_* family prom.go exports; the
// exposition test and cmd/promcheck agree on this set.
var storageFamilies = []string{
	"olap_storage_generation",
	"olap_storage_tables",
	"olap_storage_quarantined_tables",
	"olap_storage_segments_written_total",
	"olap_storage_segments_recovered_total",
	"olap_storage_segments_quarantined_total",
	"olap_storage_checkpoints_total",
	"olap_storage_recoveries_total",
	"olap_storage_manifests_skipped_total",
	"olap_storage_bytes_written_total",
	"olap_storage_bytes_read_total",
}

// TestMetricsStorageFamilies: with a data directory configured, every
// olap_storage_* family must appear in /metrics with values matching
// the store's actual state; without one, none may appear (the golden
// exposition test pins that byte-for-byte — this guards the gate
// directly).
func TestMetricsStorageFamilies(t *testing.T) {
	db := usersDB(t)
	if _, err := db.SetDataDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	gen, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("checkpoint committed generation 0")
	}
	s := NewServer(db, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	samples, err := scrape(srv)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, smp := range samples {
		if strings.HasPrefix(smp.name, "olap_storage_") {
			got[smp.name] = smp.value
		}
	}
	for _, fam := range storageFamilies {
		if _, ok := got[fam]; !ok {
			t.Errorf("family %s missing from persistent exposition", fam)
		}
	}
	for fam := range got {
		known := false
		for _, want := range storageFamilies {
			known = known || fam == want
		}
		if !known {
			t.Errorf("unexpected storage family %s (add it to storageFamilies and promcheck)", fam)
		}
	}
	if got["olap_storage_generation"] != float64(gen) {
		t.Errorf("olap_storage_generation = %v, want %d", got["olap_storage_generation"], gen)
	}
	if got["olap_storage_tables"] != 1 {
		t.Errorf("olap_storage_tables = %v, want 1", got["olap_storage_tables"])
	}
	if got["olap_storage_checkpoints_total"] == 0 {
		t.Error("olap_storage_checkpoints_total = 0 after an explicit checkpoint")
	}
	if got["olap_storage_segments_written_total"] == 0 {
		t.Error("olap_storage_segments_written_total = 0 after an explicit checkpoint")
	}
	if got["olap_storage_bytes_written_total"] == 0 {
		t.Error("olap_storage_bytes_written_total = 0 after an explicit checkpoint")
	}
	if got["olap_storage_quarantined_tables"] != 0 {
		t.Errorf("olap_storage_quarantined_tables = %v on a healthy store", got["olap_storage_quarantined_tables"])
	}

	// The in-memory exposition must not leak any storage family.
	// (SetDataDir("") forces persistence off even when the suite runs
	// under GMDJ_DATA_DIR, where Open attaches a store by default.)
	memDB := usersDB(t)
	if _, err := memDB.SetDataDir(""); err != nil {
		t.Fatal(err)
	}
	mem := NewServer(memDB, Config{})
	memSrv := httptest.NewServer(mem.Handler())
	defer memSrv.Close()
	samples, err = scrape(memSrv)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range samples {
		if strings.HasPrefix(smp.name, "olap_storage_") {
			t.Errorf("family %s exported without a data directory", smp.name)
		}
	}
}
