package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Request identity: one ID per client request, minted at the HTTP edge
// (or accepted from the caller's X-Request-Id header) and carried down
// the stack on the context. Every layer that records something about a
// query — the live registry, the slow-query log, the trace ring, the
// stats tree, the structured log stream — stamps the same ID, so one
// grep (or one Perfetto search) correlates a request across all of
// them. The ID is metadata only: no execution decision may depend on
// it.

// RequestIDHeader is the HTTP header olapd reads (and echoes) for the
// request ID. A client that sends its own ID gets it back verbatim
// after sanitization; otherwise the server mints one.
const RequestIDHeader = "X-Request-Id"

// MaxRequestIDLen bounds accepted request IDs; longer client-supplied
// values are truncated rather than rejected, so an over-eager proxy
// cannot turn telemetry into a request failure.
const MaxRequestIDLen = 64

// NewRequestID mints a fresh 16-hex-character request ID from
// crypto/rand. IDs are opaque: uniqueness within a trace window is all
// that is promised.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant beats propagating an error through telemetry paths.
		return "rid-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID normalizes a client-supplied ID: characters outside
// [A-Za-z0-9._-] are replaced with '_' (they would corrupt log lines
// and trace args), the length is capped at MaxRequestIDLen, and an
// empty result returns "" so the caller mints instead.
func SanitizeRequestID(id string) string {
	if len(id) > MaxRequestIDLen {
		id = id[:MaxRequestIDLen]
	}
	out := []byte(id)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Context carriage. Unexported key types keep collisions impossible;
// the accessors are the only way in or out.
type ridKey struct{}
type tenantKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// ContextRequestID extracts the request ID ("" when absent).
func ContextRequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// WithTenant returns a context carrying the tenant name.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// ContextTenant extracts the tenant name ("" when absent).
func ContextTenant(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}
