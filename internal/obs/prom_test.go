package obs

import (
	"strings"
	"testing"
)

func TestPromSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"serve.queued":   "serve_queued",
		"http_ns.a-b":    "http_ns_a_b",
		"9lives":         "_9lives",
		"ok_name":        "ok_name",
		"":               "_",
		"weird name!":    "weird_name_",
		"gmdj.spill/дsk": "gmdj_spill___sk",
	} {
		if got := PromSanitize(in); got != want {
			t.Errorf("PromSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromWriterRoundTrip(t *testing.T) {
	p := NewPromWriter()
	p.Counter("olap_requests_total", "requests accepted", map[string]string{"tenant": "a"}, 3)
	p.Counter("olap_requests_total", "requests accepted", map[string]string{"tenant": "b"}, 5)
	p.Gauge("olap_inflight", "in-flight queries", nil, 2)
	p.Gauge("olap_escape", "label escaping", map[string]string{"v": "a\"b\\c\nd"}, 1)

	h := NewHistogram()
	for _, v := range []int64{100, 1_000_000, 2_000_000, 500_000_000} {
		h.Record(v)
	}
	p.Histogram("olap_request_duration_seconds", "request wall time", map[string]string{"tenant": "a"}, h.Snapshot(), 1e-9)

	if err := p.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	doc := p.String()
	if err := ValidateExposition([]byte(doc)); err != nil {
		t.Fatalf("ValidateExposition rejected our own output: %v\n%s", err, doc)
	}
	for _, want := range []string{
		"# TYPE olap_requests_total counter",
		`olap_requests_total{tenant="a"} 3`,
		`olap_requests_total{tenant="b"} 5`,
		"# TYPE olap_request_duration_seconds histogram",
		`olap_request_duration_seconds_bucket{le="+Inf",tenant="a"} 4`,
		`olap_request_duration_seconds_count{tenant="a"} 4`,
		`olap_escape{v="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("exposition missing %q:\n%s", want, doc)
		}
	}
	// A family must be declared exactly once even with many samples.
	if n := strings.Count(doc, "# TYPE olap_requests_total"); n != 1 {
		t.Errorf("olap_requests_total declared %d times", n)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	p := NewPromWriter()
	p.Histogram("x_seconds", "x", nil, h.Snapshot(), 1e-9)
	doc := p.String()
	if err := ValidateExposition([]byte(doc)); err != nil {
		t.Fatalf("cumulative histogram rejected: %v\n%s", err, doc)
	}
	// The +Inf bucket must equal the count.
	if !strings.Contains(doc, `x_seconds_bucket{le="+Inf"} 1000`) || !strings.Contains(doc, "x_seconds_count 1000") {
		t.Errorf("+Inf/count mismatch:\n%s", doc)
	}
}

func TestPromWriterRedeclareType(t *testing.T) {
	p := NewPromWriter()
	p.Counter("x_total", "x", nil, 1)
	p.Gauge("x_total", "x", nil, 1)
	if p.Err() == nil {
		t.Fatal("redeclaring a family with a different type must error")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"no TYPE":             "foo_total 3\n",
		"counter sans _total": "# TYPE foo counter\nfoo 3\n",
		"bad name":            "# TYPE foo-bar gauge\n",
		"bad value":           "# TYPE foo gauge\nfoo zork\n",
		"unterminated labels": "# TYPE foo gauge\nfoo{a=\"b 3\n",
		"unquoted label":      "# TYPE foo gauge\nfoo{a=b} 3\n",
		"non-cumulative hist": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 7\n",
	} {
		if err := ValidateExposition([]byte(doc)); err == nil {
			t.Errorf("%s: accepted invalid doc:\n%s", name, doc)
		}
	}
}

func TestParsePromSample(t *testing.T) {
	name, labels, v, err := ParsePromSample(`olap_x_total{tenant="a b",kind="ok"} 42`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "olap_x_total" || labels["tenant"] != "a b" || labels["kind"] != "ok" || v != 42 {
		t.Errorf("parsed %q %v %v", name, labels, v)
	}
	if _, _, v, err := ParsePromSample(`up 1.5e3`); err != nil || v != 1500 {
		t.Errorf("float parse: v=%v err=%v", v, err)
	}
}

func TestRequestIDHelpers(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Error("two minted request IDs collided")
	}
	if len(a) != 16 {
		t.Errorf("minted ID %q not 16 hex chars", a)
	}
	if got := SanitizeRequestID("ok-id_1.2"); got != "ok-id_1.2" {
		t.Errorf("sanitize mangled a clean ID: %q", got)
	}
	if got := SanitizeRequestID("bad id\n{}"); got != "bad_id___" {
		t.Errorf("sanitize(%q) = %q", "bad id\\n{}", got)
	}
	long := strings.Repeat("x", 200)
	if got := SanitizeRequestID(long); len(got) != MaxRequestIDLen {
		t.Errorf("sanitize did not cap length: %d", len(got))
	}
}
