package obs

import (
	"expvar"
	"sort"
	"strconv"
	"strings"
)

// Process-wide engine metrics, published under the "gmdj" expvar map
// so any embedder that mounts net/http's /debug/vars (or olapql's
// -metrics-addr) exposes them for scraping. Updates are atomic
// expvar.Map adds — at query granularity, not per row — so they stay
// on unconditionally.
//
// Key taxonomy (dot-separated):
//
//	queries.<strategy>   completed queries per evaluation strategy
//	errors.<kind>        governed aborts: canceled, timeout, row_budget,
//	                     mem_budget, internal, other
//	rows_scanned         base-table rows produced by Scan operators
//	gmdj.detail_rows     detail tuples fed through GMDJ programs
//	gmdj.probes          hash-index probes + fallback θ-scans
//	gmdj.matches         (base, detail, θ) triples that matched
//	gmdj.completed       base tuples retired early by tuple completion
//	gmdj.coalesced       GMDJ nodes merged by Proposition 4.1 coalescing
//	faults.injected      fault-injection sites that fired
var metrics = expvar.NewMap("gmdj")

// MetricAdd bumps a process metric by delta (no-op for delta 0, so
// unconditional flush sites stay cheap).
func MetricAdd(name string, delta int64) {
	if delta == 0 {
		return
	}
	metrics.Add(name, delta)
}

// MetricsSnapshot returns the current value of every published
// integer metric.
func MetricsSnapshot() map[string]int64 {
	out := map[string]int64{}
	metrics.Do(func(kv expvar.KeyValue) {
		if i, ok := kv.Value.(*expvar.Int); ok {
			out[kv.Key] = i.Value()
		}
	})
	return out
}

// FormatMetrics renders a snapshot as sorted "name value" lines (the
// REPL's \stats output).
func FormatMetrics(snap map[string]int64) string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(snap[k], 10))
		b.WriteByte('\n')
	}
	return b.String()
}
