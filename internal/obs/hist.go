package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Workload-level latency and cardinality distributions. A single
// query's EXPLAIN ANALYZE tree (obs.go) explains one run; the
// histograms here aggregate over *every* run, which is what makes
// strategy comparisons (GMDJ vs unnesting, coalescing on vs off)
// defensible on a live workload rather than a hand-picked query.
//
// The layout is HDR-histogram-flavoured: values are binned into
// log-spaced buckets with histSubBits sub-buckets per power of two,
// giving a bounded relative error (2^-histSubBits ≈ 6%) over the full
// int64 range with a fixed, modest footprint. Every mutation is a
// plain atomic add — no locks on the record path — so parallel GMDJ
// workers and concurrent queries can share one histogram, and Merge of
// per-shard histograms is exact (bucket counts are integers; serial
// and parallel runs over the same values produce identical buckets).

const (
	// histSubBits sets sub-bucket resolution: 2^histSubBits sub-buckets
	// per power of two, i.e. ~6.25% worst-case relative error.
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	// histNumBuckets covers values 0..2^62 at that resolution: the
	// first histSubCount buckets are exact, then (62-histSubBits)
	// octaves of histSubCount sub-buckets each.
	histNumBuckets = histSubCount + (63-histSubBits)*histSubCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSubCount - 1)
	return (exp-histSubBits)*histSubCount + histSubCount + int(sub)
}

// bucketBounds returns the [lo, hi) value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSubCount {
		return int64(idx), int64(idx) + 1
	}
	g := idx - histSubCount
	exp := g/histSubCount + histSubBits
	sub := int64(g % histSubCount)
	width := int64(1) << (uint(exp) - histSubBits)
	lo = (histSubCount + sub) * width
	return lo, lo + width
}

// Histogram is a mergeable, concurrency-safe log-bucketed histogram of
// non-negative int64 samples (latencies in nanoseconds, row counts).
// The zero value is NOT ready; use NewHistogram. All methods are
// nil-safe so disabled observability costs one nil check.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histNumBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(1<<63 - 1))
	h.max.Store(-1)
	return h
}

// Record adds one sample (negatives clamp to 0). Lock-free; safe for
// concurrent use. Nil-safe.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// RecordDuration records a duration sample in nanoseconds. Nil-safe.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count reports the number of recorded samples. Nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Merge folds src's buckets into h (both keep working afterwards).
// Exact: merged bucket counts equal the counts of recording every
// sample into one histogram, regardless of sharding. Nil-safe on both
// sides.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	if m := src.min.Load(); m < h.min.Load() {
		for {
			cur := h.min.Load()
			if m >= cur || h.min.CompareAndSwap(cur, m) {
				break
			}
		}
	}
	if m := src.max.Load(); m > h.max.Load() {
		for {
			cur := h.max.Load()
			if m <= cur || h.max.CompareAndSwap(cur, m) {
				break
			}
		}
	}
	for i := range src.buckets {
		if c := src.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
}

// HistBucket is one non-empty bucket of a snapshot: samples counted in
// value range [Lo, Hi).
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram with
// pre-computed summary quantiles. Taken bucket-by-bucket without
// stopping writers, so a snapshot racing a Record may be off by the
// in-flight sample — fine for dashboards, documented for tests.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's state. Nil-safe (empty snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{}
	if h == nil || h.count.Load() == 0 {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, Count: c})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile returns the approximate q-quantile (0 < q <= 1) of the
// snapshot: the midpoint of the bucket containing the q·Count-th
// sample, clamped to the observed min/max.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= target {
			mid := b.Lo + (b.Hi-b.Lo)/2
			if mid < s.Min {
				mid = s.Min
			}
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// HistSet is a named family of histograms (latency by strategy, rows
// by operator kind). Lookup takes a read-lock; creation (rare) a write
// lock; recording is lock-free on the histogram itself. Nil-safe.
type HistSet struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistSet returns an empty set.
func NewHistSet() *HistSet { return &HistSet{m: map[string]*Histogram{}} }

// Get returns the named histogram, creating it on first use. Returns
// nil (a no-op histogram) on a nil set.
func (s *HistSet) Get(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	h := s.m[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.m[name]; h == nil {
		h = NewHistogram()
		s.m[name] = h
	}
	return h
}

// Record adds a sample to the named histogram. Nil-safe.
func (s *HistSet) Record(name string, v int64) { s.Get(name).Record(v) }

// Snapshot copies every histogram in the set. Nil-safe (empty map).
func (s *HistSet) Snapshot() map[string]HistSnapshot {
	out := map[string]HistSnapshot{}
	if s == nil {
		return out
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.m))
	hists := make([]*Histogram, 0, len(s.m))
	for k, h := range s.m {
		names = append(names, k)
		hists = append(hists, h)
	}
	s.mu.RUnlock()
	for i, k := range names {
		out[k] = hists[i].Snapshot()
	}
	return out
}

// FormatHistograms renders a snapshot map as aligned text, one line
// per histogram: count, mean, min/p50/p90/p99/max. Durations are
// assumed for *_ns names and rendered human-readably.
func FormatHistograms(snaps map[string]HistSnapshot) string {
	keys := make([]string, 0, len(snaps))
	for k := range snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		s := snaps[k]
		if s.Count == 0 {
			continue
		}
		format := func(v int64) string { return fmt.Sprintf("%d", v) }
		if strings.HasSuffix(strings.SplitN(k, ".", 2)[0], "_ns") {
			format = func(v int64) string { return fmtDuration(time.Duration(v)) }
		}
		mean := s.Sum / s.Count
		fmt.Fprintf(&b, "%-28s n=%-7d mean=%-10s min=%-10s p50=%-10s p90=%-10s p99=%-10s max=%s\n",
			k, s.Count, format(mean), format(s.Min), format(s.P50), format(s.P90), format(s.P99), format(s.Max))
	}
	return b.String()
}
