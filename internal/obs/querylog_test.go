package obs

import (
	"strings"
	"testing"
	"time"
)

func TestQueryLogThresholdAndRing(t *testing.T) {
	l := NewQueryLog(10*time.Millisecond, 3)
	if l.Observe(QueryRecord{Elapsed: 5 * time.Millisecond}) {
		t.Error("below-threshold record kept")
	}
	for i := 0; i < 5; i++ {
		if !l.Observe(QueryRecord{SQL: strings.Repeat("x", i+1), Elapsed: 20 * time.Millisecond}) {
			t.Fatalf("record %d rejected", i)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want ring capacity 3", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
	got := l.Entries()
	// Oldest-first after wraparound: records 3, 4, 5 (lengths 3, 4, 5).
	for i, want := range []int{3, 4, 5} {
		if len(got[i].SQL) != want {
			t.Errorf("entry %d SQL len = %d, want %d", i, len(got[i].SQL), want)
		}
	}
}

func TestQueryLogNilSafe(t *testing.T) {
	var l *QueryLog
	if l.Observe(QueryRecord{Elapsed: time.Hour}) {
		t.Error("nil log kept a record")
	}
	if l.Len() != 0 || l.Total() != 0 || l.Entries() != nil || l.Threshold() != 0 {
		t.Error("nil log not inert")
	}
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("nil WriteJSON = %q, want []", b.String())
	}
}

func TestQueryLogFormatNewestFirst(t *testing.T) {
	l := NewQueryLog(0, 8)
	l.Observe(QueryRecord{SQL: "first", Strategy: "gmdj-opt", Outcome: "ok", Elapsed: time.Millisecond})
	l.Observe(QueryRecord{SQL: "second", Strategy: "native", Outcome: "timeout", Err: "deadline", Elapsed: 2 * time.Millisecond})
	out := l.Format()
	if strings.Index(out, "second") > strings.Index(out, "first") {
		t.Errorf("format not newest-first:\n%s", out)
	}
	if !strings.Contains(out, "timeout") || !strings.Contains(out, "deadline") {
		t.Errorf("outcome/err missing:\n%s", out)
	}
}
