package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Structured slow-query log: any query whose wall time meets a
// configurable threshold is captured with everything needed to explain
// it after the fact — the SQL text, the strategy that ran, the
// governance outcome, and the full EXPLAIN ANALYZE stats tree of that
// exact execution. Retention is a fixed-capacity ring, so a
// long-running server keeps the most recent window without unbounded
// growth (the same policy as the trace recorder).

// DefaultQueryLogCapacity bounds the ring when the caller passes a
// non-positive capacity to NewQueryLog.
const DefaultQueryLogCapacity = 256

// QueryRecord is one logged query.
type QueryRecord struct {
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// RequestID correlates this record with the serving-layer telemetry
	// for the same request ("" for embedded callers).
	RequestID string `json:"request_id,omitempty"`
	// Tenant names the requesting tenant ("" for embedded callers).
	Tenant string `json:"tenant,omitempty"`
	// SQL is the statement text ("" for programmatic plans).
	SQL string `json:"sql,omitempty"`
	// Strategy names the evaluation strategy that ran.
	Strategy string `json:"strategy"`
	// Elapsed is the query's wall time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Rows is the result cardinality (0 on error).
	Rows int64 `json:"rows"`
	// Outcome is the governance taxonomy bucket: "ok", "canceled",
	// "timeout", "row_budget", "mem_budget", "internal", or "other".
	Outcome string `json:"outcome"`
	// Err is the error text for non-ok outcomes.
	Err string `json:"err,omitempty"`
	// Stats is the EXPLAIN ANALYZE tree of this execution (nil when the
	// engine ran without a collector).
	Stats *Op `json:"stats,omitempty"`
}

// QueryLog is a threshold-filtered ring buffer of QueryRecords. All
// methods are safe for concurrent use and nil-safe.
type QueryLog struct {
	mu        sync.Mutex
	threshold time.Duration
	entries   []QueryRecord
	cap       int
	next      int
	wrapped   bool
	// total counts every record that met the threshold, including ones
	// since overwritten by ring wraparound.
	total int64
}

// NewQueryLog creates a log keeping up to capacity records
// (DefaultQueryLogCapacity when capacity <= 0) of queries at least
// threshold slow. A zero threshold logs every query.
func NewQueryLog(threshold time.Duration, capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogCapacity
	}
	return &QueryLog{threshold: threshold, cap: capacity}
}

// Threshold reports the slow-query threshold. Nil-safe.
func (l *QueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe appends rec when it meets the threshold, reporting whether
// it was kept. Nil-safe.
func (l *QueryLog) Observe(rec QueryRecord) bool {
	if l == nil || rec.Elapsed < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, rec)
		return true
	}
	l.entries[l.next] = rec
	l.next = (l.next + 1) % l.cap
	l.wrapped = true
	return true
}

// Len reports the number of retained records. Nil-safe.
func (l *QueryLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Total reports how many queries met the threshold since creation
// (retained or since overwritten). Nil-safe.
func (l *QueryLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained records, oldest first. Nil-safe.
func (l *QueryLog) Entries() []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, len(l.entries))
	if l.wrapped {
		out = append(out, l.entries[l.next:]...)
		out = append(out, l.entries[:l.next]...)
	} else {
		out = append(out, l.entries...)
	}
	return out
}

// WriteJSON exports the retained records (oldest first) as an indented
// JSON array. Nil-safe (writes an empty array).
func (l *QueryLog) WriteJSON(w io.Writer) error {
	entries := l.Entries()
	if entries == nil {
		entries = []QueryRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// Format renders the retained records as text, newest first — the
// REPL's \slowlog view.
func (l *QueryLog) Format() string {
	entries := l.Entries()
	if len(entries) == 0 {
		return "(no slow queries recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d slow quer%s (threshold %s, %d retained):\n",
		l.Total(), plural(l.Total(), "y", "ies"), fmtDuration(l.Threshold()), len(entries))
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		sql := e.SQL
		if sql == "" {
			sql = "(plan)"
		}
		fmt.Fprintf(&b, "  [%s] %-9s %-10s rows=%-8d %s  %s\n",
			e.Time.Format("15:04:05.000"), fmtDuration(e.Elapsed), e.Strategy, e.Rows, e.Outcome, sql)
		if e.RequestID != "" {
			fmt.Fprintf(&b, "      rid: %s", e.RequestID)
			if e.Tenant != "" {
				fmt.Fprintf(&b, " tenant: %s", e.Tenant)
			}
			b.WriteString("\n")
		}
		if e.Err != "" {
			fmt.Fprintf(&b, "      err: %s\n", e.Err)
		}
	}
	return b.String()
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// NormalizeRecords zeroes every wall-clock-dependent field (record
// time, elapsed, and the stats tree's per-operator timings and byte
// approximations stay) so golden tests can compare slow-query-log JSON
// reproducibly. Returns the same slice for chaining.
func NormalizeRecords(recs []QueryRecord) []QueryRecord {
	for i := range recs {
		recs[i].Time = time.Time{}
		recs[i].Elapsed = 0
		normalizeOpTimings(recs[i].Stats)
	}
	return recs
}

func normalizeOpTimings(o *Op) {
	if o == nil {
		return
	}
	o.Elapsed = 0
	for _, ch := range o.Children {
		normalizeOpTimings(ch)
	}
}
