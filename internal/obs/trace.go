package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity bounds the ring buffer when the caller passes a
// non-positive capacity to NewTracer.
const DefaultTraceCapacity = 1 << 16

// event is one recorded trace event, already reduced to the Chrome
// trace_event fields we emit.
type event struct {
	name string
	cat  string
	ph   byte // 'X' complete span, 'i' instant
	ts   int64
	dur  int64
	tid  int64
	arg  string
}

// Tracer records span and instant events into a fixed-capacity ring
// buffer: a long-running process can leave tracing on and export the
// most recent window on demand. All methods are safe for concurrent
// use (parallel GMDJ workers record through the same tracer) and safe
// on a nil receiver, so call sites need no enablement checks.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []event
	cap     int
	next    int
	wrapped bool
	dropped int64
}

// NewTracer creates a tracer holding up to capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{start: time.Now(), cap: capacity}
}

func (t *Tracer) record(e event) {
	t.mu.Lock()
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
	} else {
		t.events[t.next] = e
		t.next = (t.next + 1) % t.cap
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
}

// micros converts an absolute time to microseconds since the tracer
// started (the trace_event ts unit).
func (t *Tracer) micros(at time.Time) int64 { return at.Sub(t.start).Microseconds() }

// Span records a complete ('X') event: an operator evaluation, a GMDJ
// worker's partition scan. tid groups events into Perfetto tracks —
// the query goroutine is tid 1, workers use 2+worker. Nil-safe.
func (t *Tracer) Span(cat, name string, tid int64, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.record(event{name: name, cat: cat, ph: 'X', ts: t.micros(start), dur: d.Microseconds(), tid: tid})
}

// SpanArgs records a complete ('X') event with an args.detail payload
// — the server path uses it to stamp request spans with
// "rid=<id> tenant=<name>" so a Perfetto search on the request ID
// lands on the serving timeline. Nil-safe.
func (t *Tracer) SpanArgs(cat, name string, tid int64, start time.Time, d time.Duration, arg string) {
	if t == nil {
		return
	}
	t.record(event{name: name, cat: cat, ph: 'X', ts: t.micros(start), dur: d.Microseconds(), tid: tid, arg: arg})
}

// Instant records an instant ('i') event: a governance trip, a fault
// injection firing. Nil-safe.
func (t *Tracer) Instant(cat, name, arg string) {
	if t == nil {
		return
	}
	t.record(event{name: name, cat: cat, ph: 'i', ts: t.micros(time.Now()), tid: 1, arg: arg})
}

// Len reports the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all buffered events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.next = 0
	t.wrapped = false
	t.dropped = 0
	t.mu.Unlock()
}

// jsonEvent is the wire form of one Chrome trace_event entry.
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteJSON exports the buffered events in Chrome trace_event JSON
// object format, loadable by chrome://tracing and Perfetto. Events are
// written oldest first. Nil-safe (writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	var ordered []event
	if t != nil {
		t.mu.Lock()
		if t.wrapped {
			ordered = append(ordered, t.events[t.next:]...)
			ordered = append(ordered, t.events[:t.next]...)
		} else {
			ordered = append(ordered, t.events...)
		}
		t.mu.Unlock()
	}
	out := struct {
		DisplayTimeUnit string      `json:"displayTimeUnit"`
		TraceEvents     []jsonEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: make([]jsonEvent, 0, len(ordered)+1)}
	out.TraceEvents = append(out.TraceEvents, jsonEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]string{"name": "gmdj"},
	})
	for _, e := range ordered {
		je := jsonEvent{Name: e.name, Cat: e.cat, Ph: string(e.ph), Ts: e.ts, Dur: e.dur, Pid: 1, Tid: e.tid}
		if e.ph == 'i' {
			je.S = "g" // global-scope instant: visible at any zoom
		}
		if e.arg != "" {
			je.Args = map[string]string{"detail": e.arg}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
