package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCollectorTree(t *testing.T) {
	c := NewCollector(nil)
	root := c.Enter("Project", "item: x")
	child := c.Enter("Scan T")
	c.Count("pages", 3)
	c.Count("pages", 2)
	c.Exit(child, 100, 2048, nil)
	c.Exit(root, 10, 0, nil)

	got := c.Root()
	if got == nil || got.Label != "Project" {
		t.Fatalf("root = %+v", got)
	}
	if len(got.Children) != 1 || got.Children[0].Label != "Scan T" {
		t.Fatalf("children = %+v", got.Children)
	}
	if got.Rows != 10 || got.Children[0].Rows != 100 || got.Children[0].Bytes != 2048 {
		t.Fatalf("rows/bytes wrong: %+v", got)
	}
	if v := got.Children[0].Get("pages"); v != 5 {
		t.Fatalf("pages = %d, want 5", v)
	}
	if tot := got.Totals(); tot["pages"] != 5 {
		t.Fatalf("Totals = %v", tot)
	}
	if f := got.Find("Scan"); f != got.Children[0] {
		t.Fatalf("Find(Scan) = %+v", f)
	}
}

func TestCollectorExitError(t *testing.T) {
	c := NewCollector(nil)
	op := c.Enter("Join")
	c.Exit(op, 0, 0, errors.New("boom"))
	if c.Root().Err != "boom" {
		t.Fatalf("err = %q", c.Root().Err)
	}
	out := FormatTree(c.Root())
	if !strings.Contains(out, `err="boom"`) {
		t.Fatalf("FormatTree missing error: %q", out)
	}
}

func TestNilSafety(t *testing.T) {
	// Every disabled hook must be callable without panicking: the
	// executor threads obs through unconditionally.
	var c *Collector
	op := c.Enter("x")
	c.Exit(op, 1, 1, nil)
	c.Count("n", 1)
	c.Instant("cat", "n", "arg")
	if c.Current() != nil || c.Root() != nil || c.Tracer() != nil {
		t.Fatal("nil collector must return nil everywhere")
	}

	var o *Op
	o.Add("n", 1)
	if o.Get("n") != 0 || o.Totals() != nil || o.Find("x") != nil {
		t.Fatal("nil op must be inert")
	}

	var tr *Tracer
	tr.Span("c", "n", 1, time.Now(), time.Second)
	tr.Instant("c", "n", "")
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if err := tr.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Span("op", string(rune('a'+i)), 1, base, time.Millisecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, b.String())
	}
	// Metadata event + the 4 newest spans, oldest first.
	if len(out.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(out.TraceEvents))
	}
	want := []string{"process_name", "g", "h", "i", "j"}
	for i, e := range out.TraceEvents {
		if e.Name != want[i] {
			t.Fatalf("event %d = %q, want %q", i, e.Name, want[i])
		}
	}
}

func TestTracerJSONShape(t *testing.T) {
	tr := NewTracer(16)
	tr.Span("op", "Scan", 1, time.Now(), 2*time.Millisecond)
	tr.Instant("govern", "timeout", "query exceeded budget")
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out["displayTimeUnit"] != "ms" {
		t.Fatalf("displayTimeUnit = %v", out["displayTimeUnit"])
	}
	evs := out["traceEvents"].([]any)
	last := evs[len(evs)-1].(map[string]any)
	if last["ph"] != "i" || last["s"] != "g" {
		t.Fatalf("instant event shape: %v", last)
	}
	if last["args"].(map[string]any)["detail"] != "query exceeded budget" {
		t.Fatalf("instant args: %v", last)
	}
}

func TestNormalizeTimings(t *testing.T) {
	in := "Scan T (time=1.23ms rows=10)\n  Join (time=456µs rows=2 probes=7)\n"
	want := "Scan T (time=X rows=10)\n  Join (time=X rows=2 probes=7)\n"
	if got := NormalizeTimings(in); got != want {
		t.Fatalf("NormalizeTimings = %q", got)
	}
}

func TestMetrics(t *testing.T) {
	MetricAdd("test.counter", 2)
	MetricAdd("test.counter", 3)
	MetricAdd("test.zero", 0) // must not create the key
	snap := MetricsSnapshot()
	if snap["test.counter"] != 5 {
		t.Fatalf("test.counter = %d, want 5", snap["test.counter"])
	}
	if _, ok := snap["test.zero"]; ok {
		t.Fatal("zero delta must not publish a metric")
	}
	text := FormatMetrics(map[string]int64{"b": 2, "a": 1})
	if text != "a 1\nb 2\n" {
		t.Fatalf("FormatMetrics = %q", text)
	}
}

func TestCollectorSecondRoot(t *testing.T) {
	// A second top-level Enter (defensive path) must stay visible
	// rather than corrupting the tree.
	c := NewCollector(nil)
	a := c.Enter("first")
	c.Exit(a, 1, 0, nil)
	b := c.Enter("second")
	c.Exit(b, 2, 0, nil)
	root := c.Root()
	if root.Label != "first" || len(root.Children) != 1 || root.Children[0].Label != "second" {
		t.Fatalf("tree = %+v", root)
	}
}
