package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNilObserverHooks is the nil-safety contract: every exported
// method of *Observer must be a no-op (not a panic) on a nil receiver,
// because the engine threads the observer through unconditionally. The
// table below exercises each method; the reflection check at the end
// fails the test if a new exported method is added without extending
// the table.
func TestNilObserverHooks(t *testing.T) {
	var o *Observer
	hooks := map[string]func(){
		"QueryStart": func() {
			if q := o.QueryStart(context.Background(), "SELECT 1", "native"); q != nil {
				t.Error("nil QueryStart returned a live entry")
			}
		},
		"QueryEnd": func() { o.QueryEnd(nil, time.Second, 5, &Op{Label: "Scan t"}, "ok", "") },
		"OpSample": func() { o.OpSample("scan", time.Millisecond, 10) },
		"SlowLog": func() {
			if o.SlowLog() != nil {
				t.Error("nil SlowLog not nil")
			}
		},
		"Histograms": func() {
			if len(o.Histograms()) != 0 {
				t.Error("nil Histograms not empty")
			}
		},
		"LatencyHistogram": func() {
			if o.LatencyHistogram("gmdj") != nil {
				t.Error("nil LatencyHistogram not nil")
			}
		},
		"InFlight": func() {
			if len(o.InFlight()) != 0 {
				t.Error("nil InFlight not empty")
			}
		},
		"FormatInFlight": func() { _ = o.FormatInFlight() },
		"SetMemSource":   func() { o.SetMemSource(func() any { return nil }) },
		"SetTraceSource": func() { o.SetTraceSource(func(io.Writer) error { return nil }) },
		"Handler": func() {
			rec := httptest.NewRecorder()
			o.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/olap/queries", nil))
			if rec.Code != 503 {
				t.Errorf("nil Handler status = %d, want 503", rec.Code)
			}
		},
	}
	for name, fn := range hooks {
		t.Run(name, func(*testing.T) { fn() })
	}
	// Completeness: the table must name every exported method.
	typ := reflect.TypeOf(o)
	for i := 0; i < typ.NumMethod(); i++ {
		if name := typ.Method(i).Name; hooks[name] == nil {
			t.Errorf("exported method %s missing from the nil-safety table", name)
		}
	}
	// And the LiveQuery hooks the executor calls:
	var q *LiveQuery
	q.AddOut(1, 10)
	q.AddScanned(5)
	q.AddDetail(3)
}

func TestObserverLifecycle(t *testing.T) {
	o := NewObserver(ObserverConfig{SlowQueryThreshold: 0, SlowLogCapacity: 4})
	q := o.QueryStart(WithTenant(WithRequestID(context.Background(), "rid-lifecycle"), "acme"), "SELECT * FROM flows", "gmdj-opt")
	if q == nil {
		t.Fatal("QueryStart returned nil")
	}
	q.AddOut(7, 700)
	q.AddScanned(300)
	q.AddDetail(33)

	live := o.InFlight()
	if len(live) != 1 {
		t.Fatalf("InFlight = %d entries, want 1", len(live))
	}
	if live[0].Rows != 7 || live[0].Bytes != 700 || live[0].Scanned != 300 || live[0].DetailRows != 33 {
		t.Errorf("live counters = %+v", live[0])
	}
	if live[0].RequestID != "rid-lifecycle" || live[0].Tenant != "acme" {
		t.Errorf("live identity = rid %q tenant %q, want rid-lifecycle/acme", live[0].RequestID, live[0].Tenant)
	}

	root := &Op{Label: "Project [x]", Elapsed: time.Millisecond, Rows: 7,
		Children: []*Op{{Label: "Scan flows->F", Elapsed: time.Millisecond, Rows: 300}}}
	o.QueryEnd(q, 3*time.Millisecond, 7, root, "ok", "")

	if n := len(o.InFlight()); n != 0 {
		t.Errorf("InFlight after end = %d, want 0", n)
	}
	h := o.Histograms()
	if h["query_ns.gmdj-opt"].Count != 1 || h["query_rows.gmdj-opt"].Count != 1 {
		t.Errorf("query histograms not recorded: %v", h)
	}
	if h["op_ns.project"].Count != 1 || h["op_ns.scan"].Count != 1 {
		t.Errorf("op histograms not recorded: %v", h)
	}
	if o.SlowLog().Len() != 1 {
		t.Errorf("slowlog len = %d, want 1", o.SlowLog().Len())
	}
	recs := o.SlowLog().Entries()
	if recs[0].RequestID != "rid-lifecycle" || recs[0].Tenant != "acme" {
		t.Errorf("slowlog identity = rid %q tenant %q, want rid-lifecycle/acme", recs[0].RequestID, recs[0].Tenant)
	}
}

func TestOpKind(t *testing.T) {
	for label, want := range map[string]string{
		"Scan Flow->F":                    "scan",
		"Project [H.HourDsc]":             "project",
		"Select [cnt1 > 0]":               "select",
		"GMDJ +completion (1 conditions)": "gmdj",
		"Join(inner)":                     "join",
	} {
		if got := OpKind(label); got != want {
			t.Errorf("OpKind(%q) = %q, want %q", label, got, want)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	q := o.QueryStart(context.Background(), "SELECT 1", "native")
	q.AddOut(2, 20)
	h := o.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/debug/olap/queries")
	if rec.Code != 200 {
		t.Fatalf("queries status %d", rec.Code)
	}
	var live []LiveSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &live); err != nil {
		t.Fatalf("queries not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(live) != 1 || live[0].Rows != 2 || live[0].SQL != "SELECT 1" {
		t.Errorf("queries JSON = %+v", live)
	}

	if rec := get("/debug/olap/queries?format=text"); !strings.Contains(rec.Body.String(), "SELECT 1") {
		t.Errorf("text queries missing SQL:\n%s", rec.Body.String())
	}

	o.QueryEnd(q, time.Millisecond, 2, nil, "ok", "")
	rec = get("/debug/olap/hist")
	var hist map[string]HistSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatalf("hist not JSON: %v", err)
	}
	if hist["query_ns.native"].Count != 1 {
		t.Errorf("hist JSON missing query_ns.native: %v", hist)
	}
	if rec := get("/debug/olap/hist?format=text"); !strings.Contains(rec.Body.String(), "query_ns.native") {
		t.Errorf("text hist:\n%s", rec.Body.String())
	}

	if rec := get("/debug/olap/slowlog"); rec.Code != 200 {
		t.Errorf("slowlog status %d", rec.Code)
	}
	if rec := get("/debug/olap/trace"); rec.Code != 404 {
		t.Errorf("unregistered trace status %d, want 404", rec.Code)
	}
	tr := NewTracer(16)
	tr.SpanArgs("serve", "request", 7, time.Now(), time.Millisecond, "rid=abc tenant=t1")
	o.SetTraceSource(tr.WriteJSON)
	rec = get("/debug/olap/trace")
	if rec.Code != 200 {
		t.Fatalf("trace status %d", rec.Code)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "olap-trace.json") {
		t.Errorf("trace Content-Disposition = %q", cd)
	}
	if body := rec.Body.String(); !strings.Contains(body, "rid=abc") || !strings.Contains(body, `"cat":"serve"`) {
		t.Errorf("trace body missing span args:\n%s", body)
	}
	if rec := get("/debug/olap/nope"); rec.Code != 404 {
		t.Errorf("unknown path status %d, want 404", rec.Code)
	}
}
