package profile

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedRecorder builds a recorder with a deterministic clock and the
// built-in goroutine dump replaced by a fixed member, so bundles are
// reproducible byte for byte.
func fixedRecorder(t *testing.T, minInterval time.Duration) (*Recorder, *time.Time) {
	t.Helper()
	r, err := NewRecorder(RecorderConfig{Dir: filepath.Join(t.TempDir(), "incidents"), MinInterval: minInterval})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r.now = func() time.Time { return clock }
	return r, &clock
}

func staticSource(s string) func(io.Writer) error {
	return func(w io.Writer) error { _, err := io.WriteString(w, s); return err }
}

func TestTriggerSyncRateLimit(t *testing.T) {
	r, clock := fixedRecorder(t, time.Minute)
	r.AddSource("goroutines.txt", staticSource("stacks\n"))

	dir1, ok := r.TriggerSync(TriggerSlowQuery, "first")
	if !ok || dir1 == "" {
		t.Fatalf("first trigger: written=%v dir=%q", ok, dir1)
	}
	// Inside the window: suppressed, async and sync alike.
	*clock = clock.Add(30 * time.Second)
	if _, ok := r.TriggerSync(TriggerSLOBurn, "storm"); ok {
		t.Fatal("second trigger inside MinInterval wrote a bundle")
	}
	r.Trigger(TriggerSLOBurn, "storm again")
	// Past the window: admitted again.
	*clock = clock.Add(31 * time.Second)
	dir2, ok := r.TriggerSync(TriggerQueueDepth, "later")
	if !ok {
		t.Fatal("trigger past MinInterval suppressed")
	}
	if dir1 == dir2 {
		t.Fatalf("bundles share directory %s", dir1)
	}

	st := r.Stats()
	if st.Written != 2 {
		t.Errorf("written = %d; want 2", st.Written)
	}
	if st.Suppressed != 2 {
		t.Errorf("suppressed = %d; want 2", st.Suppressed)
	}
	if got := len(r.Bundles()); got != 2 {
		t.Errorf("bundles on disk = %d; want 2", got)
	}
}

func TestManifestGolden(t *testing.T) {
	r, _ := fixedRecorder(t, time.Minute)
	r.AddSource("goroutines.txt", staticSource("goroutine 1 [running]:\nmain.main()\n"))
	r.AddSource("config.json", staticSource("{\"workers\":4}\n"))
	r.AddSource("slowlog.json", staticSource("[]\n"))
	r.AddSource("broken.txt", func(io.Writer) error { return fmt.Errorf("source unavailable") })

	dir, ok := r.TriggerSync(TriggerManual, "golden")
	if !ok {
		t.Fatal("bundle not written")
	}
	got, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestValidateBundle(t *testing.T) {
	r, _ := fixedRecorder(t, time.Minute)
	r.AddSource("config.json", staticSource("{\"workers\":4}\n"))
	r.AddSource("metrics.prom", staticSource("# TYPE olap_up gauge\nolap_up 1\n"))
	r.AddSource("broken.txt", func(io.Writer) error { return fmt.Errorf("source unavailable") })

	dir, ok := r.TriggerSync(TriggerManual, "validate")
	if !ok {
		t.Fatal("bundle not written")
	}
	if err := ValidateBundle(dir, []string{"config.json", "goroutines.txt", "metrics.prom"}); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	// A member whose source failed is tolerated — unless required.
	if err := ValidateBundle(dir, []string{"broken.txt"}); err == nil {
		t.Error("required-but-failed member accepted")
	}
	// Corruption is caught by the checksum.
	if err := os.WriteFile(filepath.Join(dir, "config.json"), []byte("{\"workers\":5}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBundle(dir, nil); err == nil {
		t.Error("corrupted member accepted")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption surfaced as %v; want checksum mismatch", err)
	}
	// A stray file next to the manifest is caught.
	if err := os.WriteFile(filepath.Join(dir, "config.json"), []byte("{\"workers\":4}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBundle(dir, nil); err == nil {
		t.Error("unlisted file accepted")
	}
}

func TestProbeFiresBundle(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{
		Dir:           filepath.Join(t.TempDir(), "incidents"),
		MinInterval:   time.Millisecond,
		WatchInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	r.AddProbe(TriggerMemPressure, func() (bool, string) {
		if fired {
			return false, ""
		}
		fired = true
		return true, "pool at 97%"
	})
	r.Start()
	defer r.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(r.Bundles()) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v; want exactly one from the probe", bundles)
	}
	if !strings.Contains(bundles[0], "mem_pressure") {
		t.Errorf("bundle %q does not carry the trigger kind", bundles[0])
	}
	if err := ValidateBundle(filepath.Join(r.Dir(), bundles[0]), []string{"goroutines.txt"}); err != nil {
		t.Errorf("probe bundle invalid: %v", err)
	}
}

func TestDumpGoroutinesBypassesRateLimit(t *testing.T) {
	r, _ := fixedRecorder(t, time.Hour)
	if _, ok := r.TriggerSync(TriggerManual, "take the slot"); !ok {
		t.Fatal("setup bundle not written")
	}
	path, err := r.DumpGoroutines("leak check failed: 9 live, baseline 5")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "leak check failed") || !strings.Contains(string(raw), "goroutine") {
		t.Errorf("dump lacks reason or stacks:\n%.200s", raw)
	}
	pb := strings.TrimSuffix(path, ".txt") + ".pprof"
	rawPB, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProfile(rawPB); err != nil {
		t.Errorf("companion profile unparseable: %v", err)
	}
}
