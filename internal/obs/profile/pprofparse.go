package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Minimal reader for the pprof protobuf profile format
// (profile.proto), covering exactly what this package needs: sample
// types, sample values, and sample labels. Locations, mappings, and
// functions are skipped — attribution here is by label, not by frame.
// Hand-rolled because the repo takes no external dependencies; the
// wire format is stable and small (varints and length-delimited
// fields only).

// ValueType is one dimension of a profile's sample values (e.g.
// cpu/nanoseconds, inuse_space/bytes).
type ValueType struct {
	Type string
	Unit string
}

// Sample is one profile sample: a value per ValueType plus the pprof
// labels that were set on the sampled goroutine.
type Sample struct {
	Values    []int64
	Labels    map[string]string
	NumLabels map[string]int64
}

// Profile is a parsed pprof profile, reduced to the parts needed for
// label-based attribution and validation.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
}

type rawValueType struct{ typ, unit int64 }

type rawLabel struct{ key, str, num int64 }

type rawSample struct {
	values []int64
	labels []rawLabel
}

// ParseProfile parses a pprof profile, gzip-compressed or raw.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
	}
	var (
		strings     []string
		sampleTypes []rawValueType
		samples     []rawSample
		periodType  rawValueType
		out         = &Profile{}
	)
	err := walkFields(data, func(field int, wire int, varint uint64, chunk []byte) error {
		switch field {
		case 1: // sample_type
			vt, err := parseValueType(chunk)
			if err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			s, err := parseSample(chunk)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case 6: // string_table
			strings = append(strings, string(chunk))
		case 9:
			out.TimeNanos = int64(varint)
		case 10:
			out.DurationNanos = int64(varint)
		case 11:
			vt, err := parseValueType(chunk)
			if err != nil {
				return err
			}
			periodType = vt
		case 12:
			out.Period = int64(varint)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	str := func(i int64) string {
		if i < 0 || i >= int64(len(strings)) {
			return ""
		}
		return strings[i]
	}
	for _, vt := range sampleTypes {
		out.SampleTypes = append(out.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	out.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, l := range rs.labels {
			if l.str != 0 {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[str(l.key)] = str(l.str)
			} else {
				if s.NumLabels == nil {
					s.NumLabels = map[string]int64{}
				}
				s.NumLabels[str(l.key)] = l.num
			}
		}
		out.Samples = append(out.Samples, s)
	}
	return out, nil
}

func parseValueType(data []byte) (rawValueType, error) {
	var vt rawValueType
	err := walkFields(data, func(field, wire int, v uint64, chunk []byte) error {
		switch field {
		case 1:
			vt.typ = int64(v)
		case 2:
			vt.unit = int64(v)
		}
		return nil
	})
	return vt, err
}

func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	err := walkFields(data, func(field, wire int, v uint64, chunk []byte) error {
		switch field {
		case 2: // value: packed (wire 2) or singular (wire 0)
			if wire == 0 {
				s.values = append(s.values, int64(v))
				return nil
			}
			for len(chunk) > 0 {
				u, n := decodeVarint(chunk)
				if n <= 0 {
					return fmt.Errorf("profile: truncated packed value")
				}
				s.values = append(s.values, int64(u))
				chunk = chunk[n:]
			}
		case 3: // label
			var l rawLabel
			err := walkFields(chunk, func(f, w int, lv uint64, _ []byte) error {
				switch f {
				case 1:
					l.key = int64(lv)
				case 2:
					l.str = int64(lv)
				case 3:
					l.num = int64(lv)
				}
				return nil
			})
			if err != nil {
				return err
			}
			s.labels = append(s.labels, l)
		}
		return nil
	})
	return s, err
}

// walkFields iterates a protobuf message's fields, calling fn with the
// field number, wire type, varint value (wire 0) or byte chunk (wire
// 2). Fixed32/fixed64 fields are skipped.
func walkFields(data []byte, fn func(field, wire int, varint uint64, chunk []byte) error) error {
	for len(data) > 0 {
		key, n := decodeVarint(data)
		if n <= 0 {
			return fmt.Errorf("profile: truncated field key")
		}
		data = data[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := decodeVarint(data)
			if n <= 0 {
				return fmt.Errorf("profile: truncated varint (field %d)", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1:
			if len(data) < 8 {
				return fmt.Errorf("profile: truncated fixed64 (field %d)", field)
			}
			data = data[8:]
		case 2:
			l, n := decodeVarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("profile: truncated chunk (field %d)", field)
			}
			chunk := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case 5:
			if len(data) < 4 {
				return fmt.Errorf("profile: truncated fixed32 (field %d)", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("profile: unsupported wire type %d (field %d)", wire, field)
		}
	}
	return nil
}

func decodeVarint(data []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		v |= uint64(data[i]&0x7f) << (7 * i)
		if data[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, -1
}

// cpuValueIndex locates the sample-value dimension measured in CPU
// nanoseconds (type "cpu" in CPU profiles). Returns -1 when absent.
func (p *Profile) cpuValueIndex() int {
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" && st.Unit == "nanoseconds" {
			return i
		}
	}
	return -1
}

// CPUSecondsByLabel aggregates the profile's CPU time per value of one
// label key. Samples without the key are billed to unlabeled. Returns
// nil when the profile has no CPU dimension.
func (p *Profile) CPUSecondsByLabel(key, unlabeled string) map[string]float64 {
	idx := p.cpuValueIndex()
	if idx < 0 {
		return nil
	}
	out := map[string]float64{}
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		v := s.Labels[key]
		if v == "" {
			v = unlabeled
		}
		out[v] += float64(s.Values[idx]) / 1e9
	}
	return out
}

// HasLabelKey reports whether any sample carries the label key.
func (p *Profile) HasLabelKey(key string) bool {
	for _, s := range p.Samples {
		if _, ok := s.Labels[key]; ok {
			return true
		}
	}
	return false
}
