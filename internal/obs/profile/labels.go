// Package profile is the engine's continuous-profiling layer: pprof
// label plumbing that attributes CPU samples to tenants and queries, a
// background profiler that captures CPU/heap/goroutine/mutex profiles
// on a cadence into a bounded on-disk ring, and an incident flight
// recorder that freezes the process's observable state into a
// self-contained bundle when a trigger (slow query, SLO burn, queue
// depth, memory pressure) fires.
//
// The package is deliberately dependency-free beyond the standard
// library and internal/obs, matching the repo's hand-rolled Prometheus
// writer: profiles are parsed with a minimal protobuf reader
// (pprofparse.go) rather than an external pprof library.
package profile

import "runtime/pprof"

// Label keys attached to query execution. Go propagates pprof labels
// to every goroutine spawned under them, so labels set around the
// engine's execute call appear on GMDJ worker goroutines too — CPU
// profiles then attribute worker samples to the tenant and strategy
// that scheduled the work.
const (
	LabelTenant   = "tenant"
	LabelRID      = "rid"
	LabelStrategy = "strategy"
	LabelPhase    = "phase"
)

// QueryLabels builds the label set for one query execution. Empty
// values are omitted so an unlabeled dimension costs nothing in the
// profile's string table.
func QueryLabels(tenant, rid, strategy, phase string) pprof.LabelSet {
	kv := make([]string, 0, 8)
	if tenant != "" {
		kv = append(kv, LabelTenant, tenant)
	}
	if rid != "" {
		kv = append(kv, LabelRID, rid)
	}
	if strategy != "" {
		kv = append(kv, LabelStrategy, strategy)
	}
	if phase != "" {
		kv = append(kv, LabelPhase, phase)
	}
	return pprof.Labels(kv...)
}
