package profile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// The on-disk profile ring follows the spill store's scratch-dir
// discipline: each process owns a pid-stamped directory
// (olap-prof-<pid>-<seq>) under a shared root, and opening a profiler
// sweeps directories whose owning pid is dead — under the same
// flock-serialized janitor lock, so a sweep can never race a
// concurrently opening profiler into deleting its live ring. Incident
// bundles (flight.go) live under <root>/incidents and are explicitly
// NOT swept: they are post-mortem artifacts that must survive the
// process that wrote them.

const (
	ringStem        = "olap-prof"
	janitorLockName = ".janitor.lock"
	// IncidentsDirName is the bundle directory under the profile root.
	IncidentsDirName = "incidents"
)

// ProfileKinds lists the runtime profiles captured per cadence cycle,
// in capture order. CPU is sampled for Config.CPUDuration; the rest
// are point-in-time snapshots.
var ProfileKinds = []string{"cpu", "heap", "goroutine", "mutex", "block"}

// Config tunes a Profiler.
type Config struct {
	// Dir is the profile root. The ring lives in a pid-stamped
	// subdirectory; incident bundles under Dir/incidents.
	Dir string
	// Interval is the capture cadence (default 30s).
	Interval time.Duration
	// CPUDuration is the CPU-profile sampling window per cycle,
	// clamped to Interval/2 (default 2s).
	CPUDuration time.Duration
	// Retain bounds the ring: profiles kept per kind (default 8).
	Retain int
	// MutexFraction is passed to runtime.SetMutexProfileFraction
	// (default 5; 0 keeps the runtime's current setting).
	MutexFraction int
	// BlockRate is passed to runtime.SetBlockProfileRate (default 0 =
	// block profiling off; it is the costliest collector).
	BlockRate int
	// MaxTenants caps distinct tenant keys in the CPU attribution map;
	// tenants beyond the cap fold into "_other" (default 32, matching
	// the serving layer's label cap).
	MaxTenants int
}

// Stats is a Profiler snapshot.
type Stats struct {
	RingDir   string           `json:"ring_dir"`
	Captures  map[string]int64 `json:"captures"`
	Errors    int64            `json:"errors"`
	LastError string           `json:"last_error,omitempty"`
	RingBytes int64            `json:"ring_bytes"`
}

// FileInfo describes one ring file for the /debug/olap/profiles index.
type FileInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Profiler captures runtime profiles on a cadence into the bounded
// on-disk ring and aggregates per-tenant CPU seconds out of each CPU
// capture. Start launches the background loop; Close stops it and
// waits (the profiler owns exactly one goroutine, so olapd's leak
// check holds across a profiler lifecycle).
type Profiler struct {
	cfg     Config
	ringDir string

	mu         sync.Mutex
	seq        int
	cpuSeconds map[string]float64 // tenant -> attributed CPU seconds
	captures   map[string]int64   // kind -> captures written
	errs       int64
	lastErr    string

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	prevMutexFraction int
	prevBlockRate     bool
}

// New opens a profiler rooted at cfg.Dir: sweeps stale rings, claims a
// fresh pid-stamped ring directory, and applies the mutex/block
// profile rates. The background loop does not run until Start.
func New(cfg Config) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, errors.New("profile: Config.Dir required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 2 * time.Second
	}
	if cfg.CPUDuration > cfg.Interval/2 {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 8
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 32
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	lock, err := lockProfileRoot(cfg.Dir)
	if err != nil {
		return nil, err
	}
	defer lock.unlock()
	sweepStaleRings(cfg.Dir)
	ringDir, err := claimRingDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	p := &Profiler{
		cfg:        cfg,
		ringDir:    ringDir,
		cpuSeconds: map[string]float64{},
		captures:   map[string]int64{},
		done:       make(chan struct{}),
	}
	if cfg.MutexFraction > 0 {
		p.prevMutexFraction = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	} else {
		p.prevMutexFraction = -1
	}
	if cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
		p.prevBlockRate = true
	}
	return p, nil
}

// RingDir returns the process's ring directory.
func (p *Profiler) RingDir() string { return p.ringDir }

// Start launches the cadence loop. Idempotent.
func (p *Profiler) Start() {
	p.startOnce.Do(func() {
		p.wg.Add(1)
		go p.loop()
	})
}

// Close stops the cadence loop, waits for any in-flight capture, and
// restores the runtime profile rates. Idempotent; safe without Start.
func (p *Profiler) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.wg.Wait()
		if p.prevMutexFraction >= 0 {
			runtime.SetMutexProfileFraction(p.prevMutexFraction)
		}
		if p.prevBlockRate {
			runtime.SetBlockProfileRate(0)
		}
	})
	return nil
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
			p.captureCycle()
		}
	}
}

// captureCycle runs one cadence iteration: a CPU sampling window, the
// snapshot profiles, attribution, and ring pruning.
func (p *Profiler) captureCycle() {
	if err := p.captureCPU(); err != nil {
		p.noteError(err)
	}
	for _, kind := range []string{"heap", "goroutine", "mutex", "block"} {
		if kind == "block" && p.cfg.BlockRate <= 0 {
			continue
		}
		if _, err := p.captureSnapshot(kind); err != nil {
			p.noteError(err)
		}
	}
	p.prune()
}

// CaptureNow synchronously captures the snapshot profiles (and a CPU
// window when cpu > 0) into the ring, returning the file paths —
// olapql's \profile and test hooks. Safe concurrently with the
// cadence loop.
func (p *Profiler) CaptureNow(cpu time.Duration) ([]string, error) {
	var paths []string
	var firstErr error
	if cpu > 0 {
		saved := p.cfg.CPUDuration
		// CaptureNow windows are caller-bounded, not cadence-bounded.
		p.mu.Lock()
		p.cfg.CPUDuration = cpu
		p.mu.Unlock()
		err := p.captureCPU()
		p.mu.Lock()
		p.cfg.CPUDuration = saved
		lastCPU := p.latestLocked("cpu")
		p.mu.Unlock()
		if err != nil {
			firstErr = err
		} else if lastCPU != "" {
			paths = append(paths, lastCPU)
		}
	}
	for _, kind := range []string{"heap", "goroutine", "mutex"} {
		path, err := p.captureSnapshot(kind)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		paths = append(paths, path)
	}
	p.prune()
	return paths, firstErr
}

// captureCPU samples a CPU profile for the configured window, writes
// it into the ring, and folds its labeled samples into the per-tenant
// attribution counters.
func (p *Profiler) captureCPU() error {
	p.mu.Lock()
	window := p.cfg.CPUDuration
	p.mu.Unlock()
	path := p.nextPath("cpu")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profile: cpu: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is active (a live /debug/pprof/profile
		// scrape, or -test.cpuprofile). Skip this window.
		f.Close()
		os.Remove(path)
		return fmt.Errorf("profile: cpu: %w", err)
	}
	select {
	case <-time.After(window):
	case <-p.done:
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("profile: cpu: %w", err)
	}
	p.mu.Lock()
	p.captures["cpu"]++
	p.mu.Unlock()
	obs.MetricAdd("profile.captures", 1)
	if data, err := os.ReadFile(path); err == nil {
		if prof, err := ParseProfile(data); err == nil {
			p.attribute(prof)
		}
	}
	return nil
}

// attribute folds one CPU profile's tenant-labeled samples into the
// running per-tenant CPU-seconds counters, bounded by MaxTenants with
// the serving layer's "_other" fold-over.
func (p *Profiler) attribute(prof *Profile) {
	by := prof.CPUSecondsByLabel(LabelTenant, "")
	if by == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for tenant, secs := range by {
		if tenant == "" {
			continue // unlabeled samples: runtime, scrapes, the profiler itself
		}
		if _, ok := p.cpuSeconds[tenant]; !ok && len(p.cpuSeconds) >= p.cfg.MaxTenants {
			tenant = "_other"
		}
		p.cpuSeconds[tenant] += secs
	}
}

// captureSnapshot writes one point-in-time profile into the ring.
func (p *Profiler) captureSnapshot(kind string) (string, error) {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return "", fmt.Errorf("profile: unknown kind %q", kind)
	}
	path := p.nextPath(kind)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("profile: %s: %w", kind, err)
	}
	werr := prof.WriteTo(f, 0)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(path)
		if werr == nil {
			werr = cerr
		}
		return "", fmt.Errorf("profile: %s: %w", kind, werr)
	}
	p.mu.Lock()
	p.captures[kind]++
	p.mu.Unlock()
	obs.MetricAdd("profile.captures", 1)
	return path, nil
}

// nextPath allocates the next ring filename for kind.
func (p *Profiler) nextPath(kind string) string {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	return filepath.Join(p.ringDir, fmt.Sprintf("%s-%06d.pprof", kind, seq))
}

// latestLocked returns the newest ring file for kind (caller holds mu).
func (p *Profiler) latestLocked(kind string) string {
	names, _ := filepath.Glob(filepath.Join(p.ringDir, kind+"-*.pprof"))
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names) // zero-padded seq: lexicographic == numeric
	return names[len(names)-1]
}

// CopyLatestTo streams the newest ring profile of kind to w — the
// flight recorder's "active CPU profile" source.
func (p *Profiler) CopyLatestTo(kind string, w io.Writer) error {
	p.mu.Lock()
	path := p.latestLocked(kind)
	p.mu.Unlock()
	if path == "" {
		return fmt.Errorf("profile: no %s capture in ring yet", kind)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

// WriteSnapshotTo writes a fresh snapshot profile (heap, goroutine,
// mutex, block, ...) to w without touching the ring.
func WriteSnapshotTo(kind string, w io.Writer, debug int) error {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return fmt.Errorf("profile: unknown kind %q", kind)
	}
	return prof.WriteTo(w, debug)
}

// prune drops ring files beyond Retain per kind, oldest first.
func (p *Profiler) prune() {
	for _, kind := range ProfileKinds {
		names, _ := filepath.Glob(filepath.Join(p.ringDir, kind+"-*.pprof"))
		if len(names) <= p.cfg.Retain {
			continue
		}
		sort.Strings(names)
		for _, stale := range names[:len(names)-p.cfg.Retain] {
			_ = os.Remove(stale)
		}
	}
}

// TenantCPU snapshots the attributed per-tenant CPU seconds.
func (p *Profiler) TenantCPU() map[string]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]float64, len(p.cpuSeconds))
	for k, v := range p.cpuSeconds {
		out[k] = v
	}
	return out
}

func (p *Profiler) noteError(err error) {
	p.mu.Lock()
	p.errs++
	p.lastErr = err.Error()
	p.mu.Unlock()
	obs.MetricAdd("profile.errors", 1)
}

// Stats snapshots the profiler.
func (p *Profiler) Stats() Stats {
	p.mu.Lock()
	st := Stats{
		RingDir:   p.ringDir,
		Captures:  make(map[string]int64, len(p.captures)),
		Errors:    p.errs,
		LastError: p.lastErr,
	}
	for k, v := range p.captures {
		st.Captures[k] = v
	}
	p.mu.Unlock()
	for _, fi := range p.Index() {
		st.RingBytes += fi.Size
	}
	return st
}

// Index lists the ring's files, sorted by name.
func (p *Profiler) Index() []FileInfo {
	entries, err := os.ReadDir(p.ringDir)
	if err != nil {
		return nil
	}
	out := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, FileInfo{Name: e.Name(), Size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- janitor (spill-store discipline) ---

type profRootLock struct{ f *os.File }

func (l profRootLock) unlock() { _ = l.f.Close() }

// lockProfileRoot takes the root's exclusive janitor lock, serializing
// stale sweeps against concurrent ring creation across processes.
func lockProfileRoot(root string) (profRootLock, error) {
	f, err := os.OpenFile(filepath.Join(root, janitorLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return profRootLock{}, fmt.Errorf("profile: opening janitor lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return profRootLock{}, fmt.Errorf("profile: locking janitor lock: %w", err)
	}
	return profRootLock{f: f}, nil
}

// sweepStaleRings removes ring directories owned by dead pids. The
// caller holds the janitor lock. Incident bundles are never swept.
func sweepStaleRings(root string) int {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pid, ok := ringPid(e.Name())
		if !ok || pid == os.Getpid() || pidAlive(pid) {
			continue
		}
		if os.RemoveAll(filepath.Join(root, e.Name())) == nil {
			removed++
			obs.MetricAdd("profile.stale_rings_removed", 1)
		}
	}
	return removed
}

// claimRingDir creates this process's ring directory, bumping the seq
// suffix past any the pid already owns (several profilers in one
// process, or pid reuse against a live ring).
func claimRingDir(root string) (string, error) {
	for seq := 1; ; seq++ {
		dir := filepath.Join(root, fmt.Sprintf("%s-%d-%d", ringStem, os.Getpid(), seq))
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return "", fmt.Errorf("profile: %w", err)
		}
	}
}

// ringPid parses the owning pid out of "olap-prof-<pid>-<seq>".
func ringPid(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, ringStem+"-")
	if !ok {
		return 0, false
	}
	pidStr, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, false
	}
	pid, err := strconv.Atoi(pidStr)
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// pidAlive reports whether pid names a live process (signal 0 probe;
// EPERM means alive but not ours).
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
