package profile

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"testing"
	"time"
)

func TestQueryLabelsOnContext(t *testing.T) {
	pprof.Do(context.Background(), QueryLabels("acme", "req-1", "gmdj-opt", "execute"), func(ctx context.Context) {
		for key, want := range map[string]string{
			LabelTenant:   "acme",
			LabelRID:      "req-1",
			LabelStrategy: "gmdj-opt",
			LabelPhase:    "execute",
		} {
			got, ok := pprof.Label(ctx, key)
			if !ok || got != want {
				t.Errorf("label %q = %q, %v; want %q", key, got, ok, want)
			}
		}
	})
	// Empty values are omitted, not set to "".
	pprof.Do(context.Background(), QueryLabels("", "", "native", ""), func(ctx context.Context) {
		if _, ok := pprof.Label(ctx, LabelTenant); ok {
			t.Error("empty tenant should not be labeled")
		}
		if got, ok := pprof.Label(ctx, LabelStrategy); !ok || got != "native" {
			t.Errorf("strategy = %q, %v", got, ok)
		}
	})
}

// TestCPUProfileCarriesLabels captures a real CPU profile while
// labeled goroutines burn CPU, then checks the hand-rolled protobuf
// parser sees the samples and attributes them to the tenant.
func TestCPUProfileCarriesLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiling unavailable: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), QueryLabels("acme", "req-1", "gmdj-opt", "execute"), func(context.Context) {
				x := 0
				for {
					select {
					case <-stop:
						_ = x
						return
					default:
						x += x*31 + 7
					}
				}
			})
		}()
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	pprof.StopCPUProfile()

	prof, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if len(prof.Samples) == 0 {
		t.Skip("no CPU samples captured (starved environment)")
	}
	if !prof.HasLabelKey(LabelTenant) {
		t.Fatalf("no sample carries the %q label across %d samples", LabelTenant, len(prof.Samples))
	}
	by := prof.CPUSecondsByLabel(LabelTenant, "")
	if by["acme"] <= 0 {
		t.Fatalf("tenant acme attributed %v CPU seconds; want > 0 (map %v)", by["acme"], by)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseProfile([]byte("not a profile")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRingRetentionAndStats(t *testing.T) {
	root := t.TempDir()
	p, err := New(Config{Dir: root, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 4; i++ {
		if _, err := p.CaptureNow(0); err != nil {
			t.Fatalf("CaptureNow: %v", err)
		}
	}
	counts := map[string]int{}
	for _, fi := range p.Index() {
		for _, kind := range ProfileKinds {
			if len(fi.Name) > len(kind) && fi.Name[:len(kind)+1] == kind+"-" {
				counts[kind]++
			}
		}
	}
	for _, kind := range []string{"heap", "goroutine", "mutex"} {
		if counts[kind] != 2 {
			t.Errorf("ring holds %d %s profiles; want 2 (retain)", counts[kind], kind)
		}
	}
	st := p.Stats()
	if st.Captures["heap"] != 4 {
		t.Errorf("heap captures = %d; want 4", st.Captures["heap"])
	}
	if st.RingBytes <= 0 {
		t.Errorf("ring bytes = %d; want > 0", st.RingBytes)
	}
}

func TestSweepStaleRings(t *testing.T) {
	root := t.TempDir()
	// A ring owned by a pid that is certainly dead: spawn and reap a
	// child, then stamp a ring directory with its pid.
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn child: %v", err)
	}
	deadPid := cmd.Process.Pid
	stale := filepath.Join(root, fmt.Sprintf("%s-%d-%d", ringStem, deadPid, 1))
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	// Incident bundles must survive the sweep.
	incidents := filepath.Join(root, IncidentsDirName)
	if err := os.MkdirAll(incidents, 0o755); err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale ring %s survived the sweep (err %v)", stale, err)
	}
	if _, err := os.Stat(incidents); err != nil {
		t.Errorf("incidents dir swept: %v", err)
	}
	if _, err := os.Stat(p.RingDir()); err != nil {
		t.Errorf("live ring missing: %v", err)
	}
}

func TestSecondProfilerClaimsFreshRing(t *testing.T) {
	root := t.TempDir()
	p1, err := New(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := New(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p1.RingDir() == p2.RingDir() {
		t.Fatalf("both profilers claimed %s", p1.RingDir())
	}
}
