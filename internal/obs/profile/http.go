package profile

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// indexResponse is GET /debug/olap/profiles: where the ring and the
// incident bundles live, what they hold, and the recorder's trigger
// counters.
type indexResponse struct {
	Profiler  *Stats         `json:"profiler,omitempty"`
	Ring      []FileInfo     `json:"ring,omitempty"`
	Incidents *RecorderStats `json:"incidents,omitempty"`
	Bundles   []string       `json:"bundles,omitempty"`
}

var ringFileRe = regexp.MustCompile(`^[a-z]+-[0-9]+\.pprof$`)

// IndexHandler serves the profile index at its mount point and
// individual ring files one path segment below it
// (/debug/olap/profiles/cpu-000001.pprof). Either argument may be nil.
func IndexHandler(p *Profiler, r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if name := ringFile(req.URL.Path); name != "" {
			if p == nil || !ringFileRe.MatchString(name) {
				http.NotFound(w, req)
				return
			}
			path := filepath.Join(p.RingDir(), name)
			if _, err := os.Stat(path); err != nil {
				http.NotFound(w, req)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			http.ServeFile(w, req, path)
			return
		}
		resp := indexResponse{}
		if p != nil {
			st := p.Stats()
			resp.Profiler = &st
			resp.Ring = p.Index()
		}
		if r != nil {
			st := r.Stats()
			resp.Incidents = &st
			resp.Bundles = r.Bundles()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// ringFile extracts the trailing path segment naming a ring file, or
// "" for the index itself.
func ringFile(path string) string {
	path = strings.TrimSuffix(path, "/")
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return ""
	}
	name := path[i+1:]
	if name == "profiles" {
		return ""
	}
	return name
}
