package profile

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"github.com/olaplab/gmdj/internal/obs"
)

// Bundle validation: the logic behind cmd/bundlecheck, shared with the
// serving-layer tests and the chaos harness. A bundle is valid when
// its manifest parses, every member the manifest claims exists with
// the recorded size and checksum, no unlisted files hide in the
// directory, and each member's content passes its format check
// (Prometheus exposition, JSON, pprof protobuf, non-empty text).

// ReadManifest parses a bundle's MANIFEST.json.
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%s: %w", ManifestName, err)
	}
	return &man, nil
}

// ValidateBundle checks one published bundle directory. required lists
// member names that must be present and error-free; every other
// manifest entry is checked when its source succeeded and tolerated
// when it recorded an error.
func ValidateBundle(dir string, required []string) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	if man.Version != 1 {
		return fmt.Errorf("manifest version %d unsupported", man.Version)
	}
	if man.Trigger == "" {
		return fmt.Errorf("manifest has no trigger")
	}
	if man.CapturedAt == "" {
		return fmt.Errorf("manifest has no captured_at")
	}
	listed := map[string]ManifestEntry{}
	for _, e := range man.Files {
		if e.Name == "" || strings.Contains(e.Name, "/") || strings.Contains(e.Name, "..") {
			return fmt.Errorf("manifest entry %q: invalid member name", e.Name)
		}
		if _, dup := listed[e.Name]; dup {
			return fmt.Errorf("manifest lists %q twice", e.Name)
		}
		listed[e.Name] = e
	}
	for _, req := range required {
		e, ok := listed[req]
		if !ok {
			return fmt.Errorf("required member %q not in manifest", req)
		}
		if e.Error != "" {
			return fmt.Errorf("required member %q failed at capture: %s", req, e.Error)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if name == ManifestName {
			continue
		}
		if _, ok := listed[name]; !ok {
			return fmt.Errorf("file %q present but not in manifest", name)
		}
	}
	for _, e := range man.Files {
		if e.Error != "" {
			continue // source failed at capture time; recorded, not present
		}
		path := filepath.Join(dir, e.Name)
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("member %q: %w", e.Name, err)
		}
		if int64(len(raw)) != e.Size {
			return fmt.Errorf("member %q: size %d, manifest says %d", e.Name, len(raw), e.Size)
		}
		h := fnv.New32a()
		h.Write(raw)
		if sum := fmt.Sprintf("%08x", h.Sum32()); sum != e.FNV32a {
			return fmt.Errorf("member %q: checksum %s, manifest says %s", e.Name, sum, e.FNV32a)
		}
		if err := checkMemberContent(e.Name, raw); err != nil {
			return fmt.Errorf("member %q: %w", e.Name, err)
		}
	}
	return nil
}

// checkMemberContent applies the per-format check implied by the
// member's extension.
func checkMemberContent(name string, raw []byte) error {
	switch {
	case strings.HasSuffix(name, ".prom"):
		return obs.ValidateExposition(raw)
	case strings.HasSuffix(name, ".json"):
		if !json.Valid(raw) {
			return fmt.Errorf("invalid JSON")
		}
	case strings.HasSuffix(name, ".pprof"):
		if _, err := ParseProfile(raw); err != nil {
			return err
		}
	case strings.HasSuffix(name, ".txt"):
		if len(raw) == 0 {
			return fmt.Errorf("empty")
		}
	}
	return nil
}

// CheckCPULabels verifies that the bundle's CPU profile attributes
// work: when cpu.pprof is present, error-free, and carries samples, at
// least one sample must hold each of the given label keys. A CPU
// window that caught no samples (an idle process) passes vacuously —
// the check guards attribution, not load.
func CheckCPULabels(dir string, keys []string) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	var entry *ManifestEntry
	for i := range man.Files {
		if man.Files[i].Name == "cpu.pprof" {
			entry = &man.Files[i]
		}
	}
	if entry == nil || entry.Error != "" {
		return nil // no CPU capture in this bundle; nothing to attribute
	}
	raw, err := os.ReadFile(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	prof, err := ParseProfile(raw)
	if err != nil {
		return err
	}
	if len(prof.Samples) == 0 {
		return nil
	}
	for _, key := range keys {
		if !prof.HasLabelKey(key) {
			return fmt.Errorf("cpu.pprof: %d samples, none labeled %q", len(prof.Samples), key)
		}
	}
	return nil
}
