package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// The flight recorder answers the question "what was the process doing
// when it went wrong?" without anyone attached: when a trigger fires —
// a slow query, SLO error-budget burn, admission-queue depth, memory
// pressure — it atomically writes one self-contained incident bundle
// (profiles, trace-ring dump, slowlog, a /metrics scrape, goroutine
// stacks, config snapshot) into the incidents directory. Bundles are
// rate-limited: a burn storm that trips the probe on every tick
// produces one bundle per MinInterval, with suppressed firings
// counted, never hundreds of bundles.

// Trigger kinds. The recorder accepts arbitrary kinds; these name the
// built-in sources.
const (
	TriggerSlowQuery   = "slow_query"
	TriggerSLOBurn     = "slo_burn"
	TriggerQueueDepth  = "queue_depth"
	TriggerMemPressure = "mem_pressure"
	TriggerLeak        = "goroutine_leak"
	TriggerManual      = "manual"
)

// ManifestName is the bundle's index file.
const ManifestName = "MANIFEST.json"

// ManifestEntry describes one bundle member: its size and FNV-32a
// checksum, or the error that kept its source from producing it.
type ManifestEntry struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	FNV32a string `json:"fnv32a,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Manifest is the bundle's MANIFEST.json: what fired, when, and the
// checksummed member list. cmd/bundlecheck validates a bundle against
// it.
type Manifest struct {
	Version    int             `json:"version"`
	Trigger    string          `json:"trigger"`
	Reason     string          `json:"reason"`
	Seq        int             `json:"seq"`
	CapturedAt string          `json:"captured_at"`
	Files      []ManifestEntry `json:"files"`
}

// RecorderConfig tunes a Recorder.
type RecorderConfig struct {
	// Dir is the incidents directory (created on demand). Typically
	// <profile root>/incidents.
	Dir string
	// MinInterval rate-limits bundle writes (default 5m). Firings
	// inside the window are counted as suppressed.
	MinInterval time.Duration
	// Retain bounds retained bundles (default 8; oldest pruned).
	Retain int
	// WatchInterval is the probe polling cadence (default 1s).
	WatchInterval time.Duration
}

// RecorderStats is a Recorder snapshot.
type RecorderStats struct {
	Triggered  int64  `json:"triggered"`
	Suppressed int64  `json:"suppressed"`
	Written    int64  `json:"written"`
	LastBundle string `json:"last_bundle,omitempty"`
}

type probe struct {
	kind string
	fn   func() (bool, string)
}

type triggerReq struct{ kind, reason string }

// Recorder is the incident flight recorder. Sources are registered
// once at wiring time (AddSource) and run on every bundle write;
// probes (AddProbe) are polled by the watch loop started by Start.
// Trigger enqueues an asynchronous bundle write from a request path;
// TriggerSync writes inline (tests, CLI). All methods are
// concurrency-safe.
type Recorder struct {
	cfg RecorderConfig
	now func() time.Time // swapped by tests for deterministic manifests

	mu      sync.Mutex
	sources map[string]func(io.Writer) error
	probes  []probe
	seq     int
	last    time.Time
	lastDir string

	triggered  atomic.Int64
	suppressed atomic.Int64
	written    atomic.Int64

	startOnce sync.Once
	closeOnce sync.Once
	reqCh     chan triggerReq
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewRecorder opens a recorder writing bundles under cfg.Dir.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, errors.New("profile: RecorderConfig.Dir required")
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 5 * time.Minute
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 8
	}
	if cfg.WatchInterval <= 0 {
		cfg.WatchInterval = time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	r := &Recorder{
		cfg:     cfg,
		now:     time.Now,
		sources: map[string]func(io.Writer) error{},
		reqCh:   make(chan triggerReq, 4),
		done:    make(chan struct{}),
	}
	// Resume the sequence past bundles a previous process left behind,
	// so a restart into the same incidents directory never collides
	// with (and never fails to rename over) an existing bundle.
	if entries, err := os.ReadDir(cfg.Dir); err == nil {
		for _, e := range entries {
			if seq, ok := bundleSeq(e.Name()); ok && seq > r.seq {
				r.seq = seq
			}
		}
	}
	return r, nil
}

// bundleSeq parses the sequence number out of "incident-%04d-<kind>"
// and "goroutine-leak-%04d" artifact names.
func bundleSeq(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "incident-")
	if !ok {
		rest, ok = strings.CutPrefix(name, "goroutine-leak-")
	}
	if !ok {
		return 0, false
	}
	digits := rest
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		digits = rest[:i]
	}
	digits = strings.TrimSuffix(strings.TrimSuffix(digits, ".txt"), ".pprof")
	seq := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	if len(digits) == 0 {
		return 0, false
	}
	return seq, true
}

// Dir returns the incidents directory.
func (r *Recorder) Dir() string { return r.cfg.Dir }

// AddSource registers a bundle member: name is the file inside the
// bundle (e.g. "trace.json"), fn streams its content. Registering a
// name twice replaces the source.
func (r *Recorder) AddSource(name string, fn func(io.Writer) error) {
	r.mu.Lock()
	r.sources[name] = fn
	r.mu.Unlock()
}

// AddProbe registers a trigger condition polled by the watch loop: fn
// returns (true, reason) when kind should fire.
func (r *Recorder) AddProbe(kind string, fn func() (bool, string)) {
	r.mu.Lock()
	r.probes = append(r.probes, probe{kind: kind, fn: fn})
	r.mu.Unlock()
}

// Start launches the watch loop (probes + asynchronous trigger
// drain). Idempotent.
func (r *Recorder) Start() {
	r.startOnce.Do(func() {
		r.wg.Add(1)
		go r.loop()
	})
}

// Close stops the watch loop and waits. Idempotent; safe without
// Start.
func (r *Recorder) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		r.wg.Wait()
	})
	return nil
}

func (r *Recorder) loop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.WatchInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case req := <-r.reqCh:
			r.TriggerSync(req.kind, req.reason)
		case <-tick.C:
			r.mu.Lock()
			probes := append([]probe(nil), r.probes...)
			r.mu.Unlock()
			for _, pb := range probes {
				if fired, reason := pb.fn(); fired {
					r.TriggerSync(pb.kind, reason)
				}
			}
		}
	}
}

// Trigger fires asynchronously: rate-limit bookkeeping happens now,
// the bundle write happens on the watch goroutine, so a request
// handler never pays bundle-write latency. No-op (suppressed) inside
// the rate-limit window.
func (r *Recorder) Trigger(kind, reason string) {
	r.triggered.Add(1)
	if !r.admit() {
		return
	}
	select {
	case r.reqCh <- triggerReq{kind: kind, reason: reason}:
	default:
		// Writer busy and queue full: this firing is redundant.
		r.suppressed.Add(1)
	}
}

// admit performs the rate-limit check without claiming the slot.
func (r *Recorder) admit() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.last.IsZero() && r.now().Sub(r.last) < r.cfg.MinInterval {
		r.suppressed.Add(1)
		return false
	}
	return true
}

// TriggerSync writes a bundle inline, honoring the rate limit.
// Returns the bundle directory and whether one was written.
func (r *Recorder) TriggerSync(kind, reason string) (string, bool) {
	r.mu.Lock()
	if !r.last.IsZero() && r.now().Sub(r.last) < r.cfg.MinInterval {
		r.mu.Unlock()
		r.suppressed.Add(1)
		return "", false
	}
	r.seq++
	seq := r.seq
	r.last = r.now()
	when := r.last
	sources := make(map[string]func(io.Writer) error, len(r.sources))
	for k, v := range r.sources {
		sources[k] = v
	}
	r.mu.Unlock()

	dir, err := r.writeBundle(kind, reason, seq, when, sources)
	if err != nil {
		obs.MetricAdd("profile.bundle_errors", 1)
		return "", false
	}
	r.mu.Lock()
	r.lastDir = dir
	r.mu.Unlock()
	r.written.Add(1)
	obs.MetricAdd("profile.bundles", 1)
	r.pruneBundles()
	return dir, true
}

// writeBundle writes one bundle atomically: members land in a hidden
// temp directory, the manifest is written last, and a single rename
// publishes the bundle — a reader never observes a partial one.
func (r *Recorder) writeBundle(kind, reason string, seq int, when time.Time, sources map[string]func(io.Writer) error) (string, error) {
	tmp := filepath.Join(r.cfg.Dir, fmt.Sprintf(".tmp-%04d", seq))
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	names := make([]string, 0, len(sources)+1)
	for n := range sources {
		names = append(names, n)
	}
	// goroutines.txt is a built-in member: even a recorder with no
	// registered sources produces a debuggable bundle.
	if _, ok := sources["goroutines.txt"]; !ok {
		names = append(names, "goroutines.txt")
		sources["goroutines.txt"] = func(w io.Writer) error { return WriteSnapshotTo("goroutine", w, 2) }
	}
	sort.Strings(names)

	man := Manifest{
		Version:    1,
		Trigger:    kind,
		Reason:     reason,
		Seq:        seq,
		CapturedAt: when.UTC().Format(time.RFC3339Nano),
	}
	for _, name := range names {
		entry := ManifestEntry{Name: name}
		if err := writeMember(filepath.Join(tmp, name), sources[name], &entry); err != nil {
			// A failed source is recorded, not fatal: a bundle missing its
			// CPU profile (none captured yet) still carries everything else.
			entry.Error = err.Error()
			entry.Size, entry.FNV32a = 0, ""
		}
		man.Files = append(man.Files, entry)
	}
	mf, err := os.Create(filepath.Join(tmp, ManifestName))
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		mf.Close()
		return "", err
	}
	if err := mf.Close(); err != nil {
		return "", err
	}
	final := filepath.Join(r.cfg.Dir, BundleDirName(seq, kind))
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	return final, nil
}

// BundleDirName is the published bundle directory name for one
// incident.
func BundleDirName(seq int, kind string) string {
	return fmt.Sprintf("incident-%04d-%s", seq, sanitizeKind(kind))
}

func sanitizeKind(kind string) string {
	var b strings.Builder
	for _, c := range kind {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "unknown"
	}
	return b.String()
}

// writeMember streams one source into the bundle, filling the entry's
// size and checksum. A source error removes the partial file.
func writeMember(path string, fn func(io.Writer) error, entry *ManifestEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h := fnv.New32a()
	n := &countingWriter{w: io.MultiWriter(f, h)}
	serr := fn(n)
	cerr := f.Close()
	if serr != nil || cerr != nil {
		os.Remove(path)
		if serr == nil {
			serr = cerr
		}
		return serr
	}
	entry.Size = n.n
	entry.FNV32a = fmt.Sprintf("%08x", h.Sum32())
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// pruneBundles removes the oldest published bundles beyond Retain.
func (r *Recorder) pruneBundles() {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "incident-") {
			bundles = append(bundles, e.Name())
		}
	}
	if len(bundles) <= r.cfg.Retain {
		return
	}
	sort.Strings(bundles) // zero-padded seq: oldest first
	for _, stale := range bundles[:len(bundles)-r.cfg.Retain] {
		_ = os.RemoveAll(filepath.Join(r.cfg.Dir, stale))
	}
}

// DumpGoroutines writes a standalone goroutine dump (full stacks plus
// the protobuf profile) straight into the incidents directory,
// bypassing the rate limit — olapd's leak-check exit path, where the
// process is about to die and this is the post-mortem. Returns the
// text dump's path.
func (r *Recorder) DumpGoroutines(reason string) (string, error) {
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	base := filepath.Join(r.cfg.Dir, fmt.Sprintf("goroutine-leak-%04d", seq))
	txt, err := os.Create(base + ".txt")
	if err != nil {
		return "", err
	}
	fmt.Fprintf(txt, "# %s\n# %s\n", reason, r.now().UTC().Format(time.RFC3339Nano))
	if err := WriteSnapshotTo("goroutine", txt, 2); err != nil {
		txt.Close()
		return "", err
	}
	if err := txt.Close(); err != nil {
		return "", err
	}
	if pb, err := os.Create(base + ".pprof"); err == nil {
		_ = WriteSnapshotTo("goroutine", pb, 0)
		_ = pb.Close()
	}
	return base + ".txt", nil
}

// Bundles lists published bundle directory names, oldest first.
func (r *Recorder) Bundles() []string {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "incident-") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the recorder.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	last := r.lastDir
	r.mu.Unlock()
	return RecorderStats{
		Triggered:  r.triggered.Load(),
		Suppressed: r.suppressed.Load(),
		Written:    r.written.Load(),
		LastBundle: last,
	}
}
