package obs

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds: every representable value maps into range and
// its bucket's bounds contain it; bucket bounds tile without gaps.
func TestBucketIndexBounds(t *testing.T) {
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000, 1 << 20, 1<<62 - 1, 1 << 62}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, histNumBuckets)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Errorf("value %d in bucket %d with bounds [%d,%d)", v, idx, lo, hi)
		}
	}
	// Tiling: consecutive buckets share an edge.
	for i := 0; i < 200; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("bucket %d hi=%d but bucket %d lo=%d", i, hi, i+1, lo)
		}
	}
}

// TestHistogramQuantiles: on a uniform 1..1000 sample, quantiles land
// within the histogram's ~6% relative resolution.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	check := func(q float64, want int64) {
		got := s.Quantile(q)
		slack := want/8 + 2 // one sub-bucket width
		if got < want-slack || got > want+slack {
			t.Errorf("q%.2f = %d, want %d ±%d", q, got, want, slack)
		}
	}
	check(0.50, 500)
	check(0.90, 900)
	check(0.99, 990)
	if s.P50 != s.Quantile(0.50) || s.P99 != s.Quantile(0.99) {
		t.Error("precomputed P50/P99 disagree with Quantile")
	}
}

// TestHistogramMergeIdentical is the merge-semantics contract: the
// same multiset of samples recorded serially into one histogram,
// concurrently into one shared histogram, and sharded across per-worker
// histograms then merged — as serial and parallel GMDJ workers do —
// must produce identical bucket counts. Run under -race this also
// proves the record path is data-race-free.
func TestHistogramMergeIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 20_000)
	for i := range samples {
		samples[i] = rng.Int63n(1 << 30)
	}

	serial := NewHistogram()
	for _, v := range samples {
		serial.Record(v)
	}

	const workers = 8
	shared := NewHistogram()
	shards := make([]*Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w] = NewHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				shared.Record(samples[i])
				shards[w].Record(samples[i])
			}
		}(w)
	}
	wg.Wait()

	merged := NewHistogram()
	for _, sh := range shards {
		merged.Merge(sh)
	}

	want := serial.Snapshot()
	for name, h := range map[string]*Histogram{"shared": shared, "merged": merged} {
		got := h.Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s snapshot differs from serial:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestHistogramNilSafe: nil receivers are inert on every method.
func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.RecordDuration(time.Second)
	h.Merge(NewHistogram())
	NewHistogram().Merge(h)
	if h.Count() != 0 {
		t.Error("nil Count != 0")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil Snapshot not empty")
	}
	var set *HistSet
	if set.Get("x") != nil {
		t.Error("nil HistSet.Get != nil")
	}
	set.Record("x", 1)
	if len(set.Snapshot()) != 0 {
		t.Error("nil HistSet.Snapshot not empty")
	}
}

// TestHistSetFormat: duration-valued families render humanly, counts
// stay numeric.
func TestHistSetFormat(t *testing.T) {
	s := NewHistSet()
	s.Record("query_ns.gmdj-opt", int64(3*time.Millisecond))
	s.Record("query_rows.gmdj-opt", 42)
	out := FormatHistograms(s.Snapshot())
	if !strings.Contains(out, "query_ns.gmdj-opt") || !strings.Contains(out, "ms") {
		t.Errorf("latency line not duration-formatted:\n%s", out)
	}
	if !strings.Contains(out, "query_rows.gmdj-opt") {
		t.Errorf("rows line missing:\n%s", out)
	}
}
