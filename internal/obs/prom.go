package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Hand-rolled Prometheus text exposition (format version 0.0.4). The
// repo's no-dependency rule extends to the metrics endpoint: a scrape
// is # HELP / # TYPE headers plus one sample line per series, which is
// short enough to emit and validate by hand. PromWriter accumulates
// families in emission order; ValidateExposition is the other half of
// the contract — the chaos harness scrapes a live server and feeds the
// bytes back through it, so the writer cannot drift from the format
// without a test noticing.

// PromSanitize maps an internal dotted name ("serve.queued",
// "http_ns.default") to a legal Prometheus metric-name suffix:
// [a-zA-Z0-9_], with every other byte folded to '_' and a leading
// digit prefixed.
func PromSanitize(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func promEscapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders a label set as {k="v",...} with keys sorted, ""
// for an empty set.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, promEscapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// PromWriter emits one exposition document. Families must be declared
// (Counter/Gauge/Histogram) before samples are added to them; a family
// may receive many samples (one per label set). Not concurrency-safe —
// build per scrape.
type PromWriter struct {
	b        strings.Builder
	declared map[string]string // family name -> type
	lastErr  error
}

// NewPromWriter creates an empty exposition document.
func NewPromWriter() *PromWriter {
	return &PromWriter{declared: map[string]string{}}
}

func (p *PromWriter) declare(name, kind, help string) {
	if prev, ok := p.declared[name]; ok {
		if prev != kind {
			p.lastErr = fmt.Errorf("prom: family %s redeclared as %s (was %s)", name, kind, prev)
		}
		return
	}
	p.declared[name] = kind
	fmt.Fprintf(&p.b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&p.b, "# TYPE %s %s\n", name, kind)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample; the family is declared on first
// use. Counter names must end in _total (enforced by the validator).
func (p *PromWriter) Counter(name, help string, labels map[string]string, v int64) {
	p.declare(name, "counter", help)
	fmt.Fprintf(&p.b, "%s%s %d\n", name, promLabels(labels), v)
}

// CounterF emits one float-valued counter sample — for counters that
// accumulate fractional units (CPU seconds). Prometheus counters are
// floats on the wire; the integer Counter is just the common case.
func (p *PromWriter) CounterF(name, help string, labels map[string]string, v float64) {
	p.declare(name, "counter", help)
	fmt.Fprintf(&p.b, "%s%s %s\n", name, promLabels(labels), promFloat(v))
}

// Gauge emits one gauge sample; the family is declared on first use.
func (p *PromWriter) Gauge(name, help string, labels map[string]string, v float64) {
	p.declare(name, "gauge", help)
	fmt.Fprintf(&p.b, "%s%s %s\n", name, promLabels(labels), promFloat(v))
}

// Histogram renders a HistSnapshot (non-cumulative [Lo,Hi) buckets in
// the histogram's native unit) as a Prometheus histogram: cumulative
// _bucket{le=} series, _sum, and _count. scale converts the native
// unit into the exposed one (1e-9 for nanoseconds → seconds, the
// Prometheus base-unit convention). The le bound of each bucket is its
// exclusive Hi, which is correct for cumulative counts: every sample
// in [Lo,Hi) is <= Hi for integer-valued sources.
func (p *PromWriter) Histogram(name, help string, labels map[string]string, s HistSnapshot, scale float64) {
	p.declare(name, "histogram", help)
	cum := int64(0)
	for _, bk := range s.Buckets {
		cum += bk.Count
		lb := map[string]string{"le": promFloat(float64(bk.Hi) * scale)}
		for k, v := range labels {
			lb[k] = v
		}
		fmt.Fprintf(&p.b, "%s_bucket%s %d\n", name, promLabels(lb), cum)
	}
	lb := map[string]string{"le": "+Inf"}
	for k, v := range labels {
		lb[k] = v
	}
	fmt.Fprintf(&p.b, "%s_bucket%s %d\n", name, promLabels(lb), s.Count)
	fmt.Fprintf(&p.b, "%s_sum%s %s\n", name, promLabels(labels), promFloat(float64(s.Sum)*scale))
	fmt.Fprintf(&p.b, "%s_count%s %d\n", name, promLabels(labels), s.Count)
}

// Err reports the first structural mistake made while building (family
// redeclared with a different type); nil when the document is sound.
func (p *PromWriter) Err() error { return p.lastErr }

// WriteTo emits the document.
func (p *PromWriter) WriteTo(w io.Writer) (int64, error) {
	if p.lastErr != nil {
		return 0, p.lastErr
	}
	n, err := io.WriteString(w, p.b.String())
	return int64(n), err
}

// String returns the document text.
func (p *PromWriter) String() string { return p.b.String() }

// PromContentType is the scrape Content-Type for the text format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

var promNameRe = func(s string) func(string) bool {
	// Tiny matcher instead of regexp: [a-zA-Z_:][a-zA-Z0-9_:]*
	return func(name string) bool {
		if name == "" {
			return false
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
			if i > 0 {
				ok = ok || c >= '0' && c <= '9'
			}
			if !ok {
				return false
			}
		}
		return true
	}
}("")

// ValidateExposition checks a scraped document against the subset of
// the text format this repo emits: every sample's family is declared
// by a preceding # TYPE, names are legal, counter families end in
// _total, histogram buckets are cumulative (non-decreasing in le
// order, +Inf equals _count), label syntax parses, and sample values
// are numbers. Returns nil for a valid document.
func ValidateExposition(doc []byte) error {
	types := map[string]string{}
	type histState struct {
		lastCum  map[string]int64 // label-sig (minus le) -> last cumulative
		infCount map[string]int64
		count    map[string]int64
	}
	hists := map[string]*histState{}
	lines := strings.Split(string(doc), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if len(fields) < 3 {
					return fmt.Errorf("line %d: malformed %s", lineNo, fields[1])
				}
				name := fields[2]
				if !promNameRe(name) {
					return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return fmt.Errorf("line %d: TYPE without a type", lineNo)
					}
					kind := fields[3]
					switch kind {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("line %d: unknown type %q", lineNo, kind)
					}
					if prev, ok := types[name]; ok && prev != kind {
						return fmt.Errorf("line %d: family %s redeclared %s (was %s)", lineNo, name, kind, prev)
					}
					if kind == "counter" && !strings.HasSuffix(name, "_total") {
						return fmt.Errorf("line %d: counter %s does not end in _total", lineNo, name)
					}
					types[name] = kind
					if kind == "histogram" {
						hists[name] = &histState{lastCum: map[string]int64{}, infCount: map[string]int64{}, count: map[string]int64{}}
					}
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name {
				if _, ok := hists[base]; ok {
					family, suffix = base, sfx
				}
				break
			}
		}
		kind, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		switch kind {
		case "histogram":
			h := hists[family]
			sig := labelSigWithoutLe(labels)
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: %s_bucket without le label", lineNo, family)
				}
				cum := int64(value)
				if prev, seen := h.lastCum[sig]; seen && cum < prev {
					return fmt.Errorf("line %d: %s{%s} bucket le=%s not cumulative (%d < %d)",
						lineNo, family, sig, le, cum, prev)
				}
				h.lastCum[sig] = cum
				if le == "+Inf" {
					h.infCount[sig] = cum
				}
			case "_count":
				h.count[sig] = int64(value)
			case "_sum":
			default:
				return fmt.Errorf("line %d: bare sample %s for histogram family %s", lineNo, name, family)
			}
		case "counter", "gauge", "untyped", "summary":
			// value already parsed; nothing structural left to check.
		}
	}
	for family, h := range hists {
		for sig, inf := range h.infCount {
			if cnt, ok := h.count[sig]; ok && cnt != inf {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %d != _count %d", family, sig, inf, cnt)
			}
		}
	}
	return nil
}

// ParsePromSample parses one exposition sample line into its name,
// labels, and value — promcheck's monotonicity diff is built on it.
func ParsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	return parsePromSample(line)
}

func parsePromSample(line string) (string, map[string]string, float64, error) {
	labels := map[string]string{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		var perr error
		labels, perr = parsePromLabels(rest[brace+1 : end])
		if perr != nil {
			return "", nil, 0, perr
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !promNameRe(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	// rest is "value" or "value timestamp"; we never emit timestamps.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	v, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
	if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
		return "", nil, 0, fmt.Errorf("bad sample value %q", valStr)
	}
	switch valStr {
	case "+Inf":
		v = math.Inf(1)
	case "-Inf":
		v = math.Inf(-1)
	case "NaN":
		v = math.NaN()
	}
	return name, labels, v, nil
}

func parsePromLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		if !promNameRe(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		out[key] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels in %q", s)
			}
			i++
		}
	}
	return out, nil
}

func labelSigWithoutLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}
