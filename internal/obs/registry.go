package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Live query registry and the Observer that ties the workload-level
// observability layer together. Every observed query registers an
// in-flight entry whose row/byte counters are bumped live from the
// executor's operator loops (and the GMDJ detail scan, including
// parallel workers), so a dashboard can show what a long query is
// doing *while it runs* — not just after it finishes. The registry is
// served over HTTP at /debug/olap/queries and the histograms at
// /debug/olap/hist, next to the expvar handler embedders already
// mount.

// LiveQuery is one in-flight query's live progress counters. The
// executor bumps them with atomic adds from whatever goroutine is
// doing the work; readers (the HTTP dashboard) load them without
// coordination. All methods are nil-safe, so the hooks cost one nil
// check when no observer is attached.
type LiveQuery struct {
	id       int64
	sql      string
	strategy string
	// requestID and tenant come off the query's context (see reqid.go);
	// both are "" for embedded/library callers with no serving edge.
	requestID string
	tenant    string
	start     time.Time

	rows    atomic.Int64 // materialized output rows across operators
	bytes   atomic.Int64 // approximate materialized bytes
	scanned atomic.Int64 // base-table rows produced by Scan operators
	detail  atomic.Int64 // GMDJ detail tuples fed (all workers)
}

// AddOut charges rows/bytes materialized by an operator. Nil-safe.
func (q *LiveQuery) AddOut(rows, bytes int64) {
	if q == nil {
		return
	}
	q.rows.Add(rows)
	q.bytes.Add(bytes)
}

// AddScanned counts base-table rows produced by a Scan. Nil-safe.
func (q *LiveQuery) AddScanned(n int64) {
	if q == nil {
		return
	}
	q.scanned.Add(n)
}

// AddDetail counts GMDJ detail tuples fed through a program; parallel
// workers share the counter. Nil-safe.
func (q *LiveQuery) AddDetail(n int64) {
	if q == nil {
		return
	}
	q.detail.Add(n)
}

// LiveSnapshot is a point-in-time copy of one in-flight query, as
// served by /debug/olap/queries.
type LiveSnapshot struct {
	ID         int64     `json:"id"`
	RequestID  string    `json:"request_id,omitempty"`
	Tenant     string    `json:"tenant,omitempty"`
	SQL        string    `json:"sql,omitempty"`
	Strategy   string    `json:"strategy"`
	Start      time.Time `json:"start"`
	ElapsedNs  int64     `json:"elapsed_ns"`
	Rows       int64     `json:"rows"`
	Bytes      int64     `json:"bytes"`
	Scanned    int64     `json:"rows_scanned"`
	DetailRows int64     `json:"detail_rows"`
}

func (q *LiveQuery) snapshot(now time.Time) LiveSnapshot {
	return LiveSnapshot{
		ID:         q.id,
		RequestID:  q.requestID,
		Tenant:     q.tenant,
		SQL:        q.sql,
		Strategy:   q.strategy,
		Start:      q.start,
		ElapsedNs:  now.Sub(q.start).Nanoseconds(),
		Rows:       q.rows.Load(),
		Bytes:      q.bytes.Load(),
		Scanned:    q.scanned.Load(),
		DetailRows: q.detail.Load(),
	}
}

// ObserverConfig tunes NewObserver.
type ObserverConfig struct {
	// SlowQueryThreshold is the minimum wall time for a query to enter
	// the slow-query log (0 logs every query).
	SlowQueryThreshold time.Duration
	// SlowLogCapacity bounds slow-log retention
	// (DefaultQueryLogCapacity when <= 0).
	SlowLogCapacity int
}

// Observer aggregates observability across queries: latency and
// cardinality histograms keyed by strategy and operator kind, the
// slow-query log, and the live in-flight registry. One Observer serves
// one engine (or several — all state is concurrency-safe). Every hook
// method is a no-op on a nil *Observer, so the engine threads it
// through unconditionally.
type Observer struct {
	// latency histograms: "query_ns.<strategy>" per-query wall time,
	// "op_ns.<kind>" inclusive per-operator wall time.
	latency *HistSet
	// rows histograms: "query_rows.<strategy>", "op_rows.<kind>".
	rows *HistSet

	slowlog *QueryLog

	mu       sync.Mutex
	inflight map[int64]*LiveQuery
	nextID   atomic.Int64
	// memSource, when set, provides the engine's memory-pool and
	// spill-store snapshot for /debug/olap/mem (obs cannot import the
	// engine, so the value crosses as an opaque JSON-marshalable any).
	memSource func() any
	// traceSource, when set, streams the engine's Chrome-trace ring for
	// /debug/olap/trace (same opacity argument as memSource).
	traceSource func(io.Writer) error
}

// NewObserver creates an observer with the given slow-query policy.
func NewObserver(cfg ObserverConfig) *Observer {
	return &Observer{
		latency:  NewHistSet(),
		rows:     NewHistSet(),
		slowlog:  NewQueryLog(cfg.SlowQueryThreshold, cfg.SlowLogCapacity),
		inflight: map[int64]*LiveQuery{},
	}
}

// QueryStart registers an in-flight query and returns its live entry
// (nil on a nil observer — every LiveQuery method tolerates that). The
// context supplies the request ID and tenant when the query arrived
// through a serving edge (see WithRequestID/WithTenant); a nil or bare
// context is fine and leaves both empty.
func (o *Observer) QueryStart(ctx context.Context, sql, strategy string) *LiveQuery {
	if o == nil {
		return nil
	}
	q := &LiveQuery{
		id:        o.nextID.Add(1),
		sql:       sql,
		strategy:  strategy,
		requestID: ContextRequestID(ctx),
		tenant:    ContextTenant(ctx),
		start:     time.Now(),
	}
	o.mu.Lock()
	o.inflight[q.id] = q
	o.mu.Unlock()
	return q
}

// QueryEnd unregisters the live entry, records the query's latency and
// cardinality histograms (keyed by strategy, then by operator kind
// from the stats tree when one was collected), and offers the query to
// the slow-query log. outcome follows the governance taxonomy ("ok",
// "canceled", ...). Nil-safe.
func (o *Observer) QueryEnd(q *LiveQuery, elapsed time.Duration, rows int64, root *Op, outcome, errText string) {
	if o == nil {
		return
	}
	strategy := "unknown"
	sql, requestID, tenant := "", "", ""
	if q != nil {
		strategy, sql = q.strategy, q.sql
		requestID, tenant = q.requestID, q.tenant
		o.mu.Lock()
		delete(o.inflight, q.id)
		o.mu.Unlock()
	}
	o.latency.Record("query_ns."+strategy, int64(elapsed))
	o.rows.Record("query_rows."+strategy, rows)
	o.sampleOps(root)
	o.slowlog.Observe(QueryRecord{
		Time:      time.Now(),
		RequestID: requestID,
		Tenant:    tenant,
		SQL:       sql,
		Strategy:  strategy,
		Elapsed:   elapsed,
		Rows:      rows,
		Outcome:   outcome,
		Err:       errText,
		Stats:     root,
	})
}

// OpSample records one operator execution into the per-kind histograms
// (inclusive wall time, output rows). Nil-safe.
func (o *Observer) OpSample(kind string, elapsed time.Duration, rows int64) {
	if o == nil || kind == "" {
		return
	}
	o.latency.Record("op_ns."+kind, int64(elapsed))
	o.rows.Record("op_rows."+kind, rows)
}

func (o *Observer) sampleOps(root *Op) {
	if root == nil {
		return
	}
	o.OpSample(OpKind(root.Label), root.Elapsed, root.Rows)
	for _, ch := range root.Children {
		o.sampleOps(ch)
	}
}

// OpKind reduces an operator label ("GMDJ +completion (1 conditions)",
// "Scan Flow->F") to its histogram key ("gmdj", "scan").
func OpKind(label string) string {
	end := len(label)
	for i, r := range label {
		if r == ' ' || r == '[' || r == '(' {
			end = i
			break
		}
	}
	return strings.ToLower(label[:end])
}

// SlowLog returns the slow-query log (nil on a nil observer).
func (o *Observer) SlowLog() *QueryLog {
	if o == nil {
		return nil
	}
	return o.slowlog
}

// Histograms returns a snapshot of every histogram, keyed
// "query_ns.<strategy>", "query_rows.<strategy>", "op_ns.<kind>",
// "op_rows.<kind>". Nil-safe (empty map).
func (o *Observer) Histograms() map[string]HistSnapshot {
	out := map[string]HistSnapshot{}
	if o == nil {
		return out
	}
	for k, v := range o.latency.Snapshot() {
		out[k] = v
	}
	for k, v := range o.rows.Snapshot() {
		out[k] = v
	}
	return out
}

// LatencyHistogram returns the per-strategy query latency histogram
// (created on demand; nil on a nil observer).
func (o *Observer) LatencyHistogram(strategy string) *Histogram {
	if o == nil {
		return nil
	}
	return o.latency.Get("query_ns." + strategy)
}

// InFlight snapshots the live registry, ordered by query id (oldest
// first). Nil-safe (empty slice).
func (o *Observer) InFlight() []LiveSnapshot {
	if o == nil {
		return nil
	}
	now := time.Now()
	o.mu.Lock()
	out := make([]LiveSnapshot, 0, len(o.inflight))
	for _, q := range o.inflight {
		out = append(out, q.snapshot(now))
	}
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FormatInFlight renders the live registry as text, one query per
// line. Nil-safe.
func (o *Observer) FormatInFlight() string {
	live := o.InFlight()
	if len(live) == 0 {
		return "(no queries in flight)\n"
	}
	var b strings.Builder
	for _, q := range live {
		sql := q.SQL
		if sql == "" {
			sql = "(plan)"
		}
		rid := q.RequestID
		if rid == "" {
			rid = "-"
		}
		fmt.Fprintf(&b, "#%-4d %-16s %-10s %-9s rows=%-8d bytes=%-10d scanned=%-8d detail=%-8d %s\n",
			q.ID, rid, q.Strategy, fmtDuration(time.Duration(q.ElapsedNs)), q.Rows, q.Bytes, q.Scanned, q.DetailRows, sql)
	}
	return b.String()
}

// SetMemSource registers the provider behind /debug/olap/mem (the
// engine wires its memory-status snapshot here). Nil-safe; nil fn
// removes the endpoint (404).
func (o *Observer) SetMemSource(fn func() any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.memSource = fn
	o.mu.Unlock()
}

// SetTraceSource registers the provider behind /debug/olap/trace (the
// engine wires its tracer's WriteJSON here). Nil-safe; nil fn removes
// the endpoint (404).
func (o *Observer) SetTraceSource(fn func(io.Writer) error) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.traceSource = fn
	o.mu.Unlock()
}

// Handler serves the observability dashboard:
//
//	/debug/olap/queries  in-flight queries with live counters
//	/debug/olap/hist     latency/row-count histograms with p50/p90/p99
//	/debug/olap/slowlog  retained slow-query records
//	/debug/olap/mem      memory pool and spill store (when registered)
//	/debug/olap/trace    Chrome trace_event download (when registered)
//
// Each endpoint returns JSON by default and plain text with
// ?format=text. Mount at /debug/olap/ (trailing slash). Nil-safe: a
// nil observer serves 503 on every path.
func (o *Observer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if o == nil {
			http.Error(w, "observability not enabled", http.StatusServiceUnavailable)
			return
		}
		asText := r.URL.Query().Get("format") == "text"
		writeJSON := func(v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(v)
		}
		writeText := func(s string) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s))
		}
		switch strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/debug/olap/"), "/") {
		case "queries":
			if asText {
				writeText(o.FormatInFlight())
				return
			}
			live := o.InFlight()
			if live == nil {
				live = []LiveSnapshot{}
			}
			writeJSON(live)
		case "hist":
			if asText {
				writeText(FormatHistograms(o.Histograms()))
				return
			}
			writeJSON(o.Histograms())
		case "slowlog":
			if asText {
				writeText(o.slowlog.Format())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = o.slowlog.WriteJSON(w)
		case "mem":
			o.mu.Lock()
			src := o.memSource
			o.mu.Unlock()
			if src == nil {
				http.NotFound(w, r)
				return
			}
			writeJSON(src())
		case "trace":
			o.mu.Lock()
			src := o.traceSource
			o.mu.Unlock()
			if src == nil {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="olap-trace.json"`)
			if err := src(w); err != nil {
				// Headers are gone; the truncated body is Perfetto's
				// problem to reject. Nothing useful to do here.
				return
			}
		default:
			http.NotFound(w, r)
		}
	})
}
