// Package obs is the engine's observability layer: per-query operator
// statistics trees (EXPLAIN ANALYZE), cheap structured trace events
// with a ring-buffer recorder (Chrome trace_event export), and
// process-wide expvar metrics.
//
// The design constraint throughout is that a disabled hook costs one
// nil check: every method on Collector, Op, and Tracer is safe on a
// nil receiver and returns immediately, so the executor threads
// observability through unconditionally and pays nothing when no one
// is looking. The paper's evaluation (§5) argues entirely from *where
// work goes* — detail scans, θ-probes, tuples retired by completion —
// and this package is what makes those quantities visible on our own
// runs.
package obs

import (
	"fmt"
	"regexp"
	"strings"
	"time"
)

// Counter is one named operator-specific counter (hash probes,
// fallback θ-scans, tuples retired by completion, ...). Counters are
// kept as a small sorted-on-render slice rather than a map: operators
// carry at most a handful.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Op is one node of the per-query operator statistics tree, mirroring
// the physical plan as it actually executed. Rows and Bytes describe
// the operator's output; Elapsed is inclusive wall time (children
// included), as in EXPLAIN ANALYZE conventions.
type Op struct {
	Label string `json:"label"`
	// RequestID is set on the root only, when the query arrived through
	// a serving edge: the same ID the response body, logs, and trace
	// carry, so a stats tree can be tied back to its request.
	RequestID string        `json:"request_id,omitempty"`
	Extras    []string      `json:"extras,omitempty"`
	Rows      int64         `json:"rows"`
	Bytes     int64         `json:"bytes,omitempty"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	Err       string        `json:"err,omitempty"`
	Counters  []Counter     `json:"counters,omitempty"`
	Children  []*Op         `json:"children,omitempty"`
	// EstRows, when present, is the cost model's predicted output
	// cardinality for this operator — the drift column of EXPLAIN
	// ANALYZE (est=N act=M), the feedback loop that tells us when the
	// optimizer's estimates are off.
	EstRows *int64 `json:"est_rows,omitempty"`

	start time.Time
}

// MisestimateFactor is the actual/estimated cardinality ratio (either
// direction) beyond which EXPLAIN ANALYZE flags an operator line.
const MisestimateFactor = 10

// SetEst attaches the cost model's cardinality estimate. Nil-safe.
func (o *Op) SetEst(rows int64) {
	if o == nil {
		return
	}
	if rows < 0 {
		rows = 0
	}
	o.EstRows = &rows
}

// Misestimate returns the larger of act/est and est/act (both floored
// at 1 to tolerate empty results) — 1.0 means a perfect estimate — and
// whether an estimate is present at all.
func (o *Op) Misestimate() (float64, bool) {
	if o == nil || o.EstRows == nil {
		return 0, false
	}
	act, est := float64(o.Rows), float64(*o.EstRows)
	if act < 1 {
		act = 1
	}
	if est < 1 {
		est = 1
	}
	if act > est {
		return act / est, true
	}
	return est / act, true
}

// Add accumulates a named counter on the operator. Nil-safe.
func (o *Op) Add(name string, v int64) {
	if o == nil || v == 0 {
		return
	}
	for i := range o.Counters {
		if o.Counters[i].Name == name {
			o.Counters[i].Value += v
			return
		}
	}
	o.Counters = append(o.Counters, Counter{Name: name, Value: v})
}

// Get returns a named counter's value (0 when absent). Nil-safe.
func (o *Op) Get(name string) int64 {
	if o == nil {
		return 0
	}
	for _, c := range o.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Totals aggregates every counter over the whole subtree — the
// flattened "why did this strategy win" summary benchlab records into
// its result cells.
func (o *Op) Totals() map[string]int64 {
	if o == nil {
		return nil
	}
	m := map[string]int64{}
	var walk func(*Op)
	walk = func(op *Op) {
		for _, c := range op.Counters {
			m[c.Name] += c.Value
		}
		for _, ch := range op.Children {
			walk(ch)
		}
	}
	walk(o)
	return m
}

// Find returns the first operator in the subtree (pre-order) whose
// label starts with prefix, or nil.
func (o *Op) Find(prefix string) *Op {
	if o == nil {
		return nil
	}
	if strings.HasPrefix(o.Label, prefix) {
		return o
	}
	for _, ch := range o.Children {
		if f := ch.Find(prefix); f != nil {
			return f
		}
	}
	return nil
}

// Collector gathers one query's operator statistics tree and forwards
// span events to an optional Tracer. Enter/Exit follow the executor's
// recursive descent, so the stack discipline is single-goroutine (the
// query goroutine); parallel GMDJ workers report through their own
// counters and the thread-safe Tracer, never through the Collector
// stack. A nil Collector is a no-op on every method.
type Collector struct {
	tracer *Tracer
	root   *Op
	stack  []*Op
}

// NewCollector creates a collector; t may be nil (stats only, no
// trace).
func NewCollector(t *Tracer) *Collector { return &Collector{tracer: t} }

// Enter opens an operator node under the innermost open operator and
// returns it. Nil-safe (returns nil, which Exit and Add accept).
func (c *Collector) Enter(label string, extras ...string) *Op {
	if c == nil {
		return nil
	}
	op := &Op{Label: label, Extras: extras, start: time.Now()}
	switch {
	case len(c.stack) > 0:
		parent := c.stack[len(c.stack)-1]
		parent.Children = append(parent.Children, op)
	case c.root == nil:
		c.root = op
	default:
		// A second top-level evaluation (defensive): keep it visible.
		c.root.Children = append(c.root.Children, op)
	}
	c.stack = append(c.stack, op)
	return op
}

// Exit closes an operator node with its output cardinality, its
// approximate output bytes, and the error (if any) that aborted it.
// Nil-safe on both receiver and op.
func (c *Collector) Exit(op *Op, rows, bytes int64, err error) {
	if c == nil || op == nil {
		return
	}
	op.Elapsed = time.Since(op.start)
	op.Rows, op.Bytes = rows, bytes
	if err != nil {
		op.Err = err.Error()
	}
	// Pop to (and including) op; tolerate a mismatched stack rather
	// than corrupting the tree.
	for i := len(c.stack) - 1; i >= 0; i-- {
		if c.stack[i] == op {
			c.stack = c.stack[:i]
			break
		}
	}
	c.tracer.Span("op", op.Label, 1, op.start, op.Elapsed)
}

// Count accumulates a named counter on the innermost open operator.
// Nil-safe; a no-op outside any operator.
func (c *Collector) Count(name string, v int64) {
	if c == nil || len(c.stack) == 0 {
		return
	}
	c.stack[len(c.stack)-1].Add(name, v)
}

// Current returns the innermost open operator (nil when none).
func (c *Collector) Current() *Op {
	if c == nil || len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

// Instant forwards an instant event (governance trip, fault fire) to
// the tracer. Nil-safe.
func (c *Collector) Instant(cat, name, arg string) {
	if c == nil {
		return
	}
	c.tracer.Instant(cat, name, arg)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Collector) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Root returns the collected stats tree (nil before any Enter).
func (c *Collector) Root() *Op {
	if c == nil {
		return nil
	}
	return c.root
}

// FormatTree renders a stats tree as the annotated plan text of
// EXPLAIN ANALYZE: one line per operator with actual time, output
// cardinality, approximate bytes, and operator-specific counters, with
// extras (GMDJ conditions) and children indented beneath.
func FormatTree(root *Op) string {
	var b strings.Builder
	formatOp(&b, root, 0)
	return b.String()
}

func formatOp(b *strings.Builder, o *Op, depth int) {
	if o == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	if o.RequestID != "" {
		fmt.Fprintf(b, "%srequest: %s\n", indent, o.RequestID)
	}
	fmt.Fprintf(b, "%s%s (time=%s", indent, o.Label, fmtDuration(o.Elapsed))
	if o.EstRows != nil {
		fmt.Fprintf(b, " act=%d est=%d", o.Rows, *o.EstRows)
		if mis, ok := o.Misestimate(); ok && mis >= MisestimateFactor {
			fmt.Fprintf(b, " misest=%.0fx", mis)
		}
	} else {
		fmt.Fprintf(b, " rows=%d", o.Rows)
	}
	if o.Bytes > 0 {
		fmt.Fprintf(b, " bytes=%d", o.Bytes)
	}
	for _, c := range o.Counters {
		fmt.Fprintf(b, " %s=%d", c.Name, c.Value)
	}
	if o.Err != "" {
		fmt.Fprintf(b, " err=%q", o.Err)
	}
	b.WriteString(")\n")
	for _, x := range o.Extras {
		fmt.Fprintf(b, "%s  %s\n", indent, x)
	}
	for _, ch := range o.Children {
		formatOp(b, ch, depth+1)
	}
}

// fmtDuration rounds to keep annotated plans readable and stable in
// width.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

var timingRE = regexp.MustCompile(`time=[^ )]+`)

// NormalizeTimings replaces every time=… annotation with time=X so
// golden tests can compare EXPLAIN ANALYZE output reproducibly.
func NormalizeTimings(s string) string {
	return timingRE.ReplaceAllString(s, "time=X")
}
