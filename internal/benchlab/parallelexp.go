package benchlab

import (
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/storage"
)

// Parallel is the morsel-driven speedup figure: the optimized GMDJ
// strategy swept at 1, 2, and 4 workers over the two heavyweight
// paper workloads — Figure 4's quantified ALL with ≠ correlation
// (fallback θ-probes dominate, so the parallel detail scan carries the
// whole cell) and Figure 5's tree-nested EXISTS over TPC-R (hash-bound
// probes plus the parallel scan/filter pipelines). Cross-variant
// verification doubles as a determinism check: every degree must
// return the same rows.
//
// Sizes mix both workloads in one sweep; KeyPair cells have
// Outer == Inner, TPC-R cells keep the fixed 1000-customer outer
// block, and Build/Query dispatch on that shape. Indexes stay off —
// GMDJ evaluation never consults them, and serial-vs-parallel is the
// only contrast this figure measures.
func (r *Runner) Parallel() *Experiment {
	f4, f5 := r.Fig4(), r.Fig5()
	var sizes []Size
	for _, n := range []int{40_000, 80_000, 120_000, 160_000} {
		rows := r.scaleN(n)
		sizes = append(sizes, Size{Label: "kp " + sizeLabel(rows, rows), Outer: rows, Inner: rows})
	}
	for _, inner := range []int{600_000, 1_200_000} {
		in := r.scaleN(inner)
		sizes = append(sizes, Size{Label: "tpcr " + sizeLabel(1000, in), Outer: 1000, Inner: in})
	}
	return &Experiment{
		ID:    "parallel",
		Title: "Morsel-driven speedup: gmdj-opt at 1/2/4 workers (Figure 4 and 5 workloads)",
		Sizes: sizes,
		Variants: []Variant{
			{Name: "1-worker", Strategy: engine.GMDJOpt, Workers: 1},
			{Name: "2-workers", Strategy: engine.GMDJOpt, Workers: 2},
			{Name: "4-workers", Strategy: engine.GMDJOpt, Workers: 4},
		},
		Build: func(s Size) *storage.Catalog {
			if s.Outer == s.Inner {
				return f4.Build(s)
			}
			return f5.Build(s)
		},
		Query: func(s Size) algebra.Node {
			if s.Outer == s.Inner {
				return f4.Query(s)
			}
			return f5.Query(s)
		},
	}
}
