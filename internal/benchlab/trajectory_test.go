package benchlab

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

func trajResults() []Result {
	return []Result{
		{Figure: "fig4", Variant: "gmdj-opt", Label: "20k", Elapsed: 5 * time.Millisecond, Rows: 40,
			Counters: map[string]int64{"probes": 1234},
			Stats: &obs.Op{Label: "GMDJ", Rows: 40, Children: []*obs.Op{
				{Label: "Scan Accounts->A", Rows: 400},
				{Label: "Scan Flow->F", Rows: 20_000},
			}}},
		{Figure: "fig4", Variant: "unnest", Label: "20k", Skipped: true, SkipNote: "too big"},
		{Figure: "fig4", Variant: "native", Label: "20k", Elapsed: 9 * time.Millisecond, Rows: 40},
		{Figure: "fig5", Variant: "gmdj-opt", Label: "20k", Elapsed: time.Millisecond, Rows: 7},
	}
}

func TestBuildTrajectory(t *testing.T) {
	tr := BuildTrajectory("fig4", "abc1234", 0.0625, trajResults())
	if tr.Commit != "abc1234" || tr.Figure != "fig4" || tr.Scale != 0.0625 {
		t.Errorf("header mismatch: %+v", tr)
	}
	// The skipped cell and the fig5 cell must be excluded.
	if len(tr.Cells) != 2 {
		t.Fatalf("cells = %d, want 2: %+v", len(tr.Cells), tr.Cells)
	}
	opt := tr.Cells[0]
	if opt.Strategy != "gmdj-opt" || opt.NsPerOp != int64(5*time.Millisecond) {
		t.Errorf("gmdj-opt cell: %+v", opt)
	}
	if opt.RowsScanned != 20_400 {
		t.Errorf("rows_scanned = %d, want 20400 (sum over Scan operators)", opt.RowsScanned)
	}
	if opt.Probes != 1234 {
		t.Errorf("probes = %d, want 1234", opt.Probes)
	}
	// Cells without stats fall back to zero counters, not a panic.
	if native := tr.Cells[1]; native.RowsScanned != 0 || native.Probes != 0 {
		t.Errorf("stats-free cell should have zero counters: %+v", native)
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	tr := BuildTrajectory("fig4", "abc1234", 0.0625, trajResults())
	var buf bytes.Buffer
	if err := WriteTrajectory(&buf, tr); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"commit": "abc1234"`, `"figure": "fig4"`, `"ns_per_op"`, `"rows_scanned"`, `"probes"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	back, err := ReadTrajectory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(tr.Cells) || back.Commit != tr.Commit {
		t.Errorf("round trip mismatch: %+v vs %+v", back, tr)
	}
}

func TestCompareTrajectories(t *testing.T) {
	base := Trajectory{Figure: "fig4", Cells: []TrajectoryCell{
		{Strategy: "gmdj-opt", Label: "20k", NsPerOp: int64(100 * time.Millisecond)},
		{Strategy: "native", Label: "20k", NsPerOp: int64(200 * time.Millisecond)},
		{Strategy: "native", Label: "40k", NsPerOp: int64(400 * time.Millisecond)},
	}}
	cur := Trajectory{Figure: "fig4", Cells: []TrajectoryCell{
		// 30% slower: regression at 15% tolerance.
		{Strategy: "gmdj-opt", Label: "20k", NsPerOp: int64(130 * time.Millisecond)},
		// 10% slower: inside tolerance.
		{Strategy: "native", Label: "20k", NsPerOp: int64(220 * time.Millisecond)},
		// Only on one side: ignored.
		{Strategy: "native", Label: "80k", NsPerOp: int64(999 * time.Millisecond)},
	}}
	regs := CompareTrajectories(base, cur, 0.15, 0)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the gmdj-opt cell", regs)
	}
	if regs[0].Strategy != "gmdj-opt" || !strings.Contains(regs[0].String(), "1.30x") {
		t.Errorf("regression = %q", regs[0].String())
	}

	// Absolute slack absorbs noise on tiny cells: a 2x slowdown on a
	// 100µs cell stays green with 2ms slack.
	tiny := Trajectory{Figure: "fig4", Cells: []TrajectoryCell{
		{Strategy: "gmdj-opt", Label: "1k", NsPerOp: int64(100 * time.Microsecond)},
	}}
	tinyCur := Trajectory{Figure: "fig4", Cells: []TrajectoryCell{
		{Strategy: "gmdj-opt", Label: "1k", NsPerOp: int64(200 * time.Microsecond)},
	}}
	if regs := CompareTrajectories(tiny, tinyCur, 0.15, 2*time.Millisecond); len(regs) != 0 {
		t.Errorf("slack should absorb sub-ms noise: %v", regs)
	}
}

// TestTrajectoryFromRealRun exercises the full reduction against a
// real (tiny) fig4 sweep with stats collection on.
func TestTrajectoryFromRealRun(t *testing.T) {
	r := &Runner{Scale: 1.0 / 500.0, Repeat: 1, Verify: true, CollectStats: true}
	exp := r.Fig4()
	results, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildTrajectory("fig4", "test", r.Scale, results)
	if len(tr.Cells) == 0 {
		t.Fatal("no cells in trajectory")
	}
	for _, c := range tr.Cells {
		if c.NsPerOp <= 0 {
			t.Errorf("%s/%s: non-positive ns_per_op", c.Strategy, c.Label)
		}
		if c.RowsScanned <= 0 {
			t.Errorf("%s/%s: rows_scanned = %d, want > 0 (stats were collected)", c.Strategy, c.Label, c.RowsScanned)
		}
	}
}
