package benchlab

import (
	"fmt"
	"testing"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

// keyPairExists is a fig4-corpus companion query whose result is
// non-empty at scale: A rows whose value reappears under a different
// key. The benchmark's own ALL ≠ query returns no rows past ~1k rows
// by construction (valDomain guarantees counterexamples), which would
// make an ordering assertion vacuous; this EXISTS variant pushes
// ~every A row through the parallel restrict→project pipeline instead.
func keyPairExists() algebra.Node {
	sub := &algebra.Subquery{
		Source: algebra.NewScan("B", "B"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.NewCmp(value.NE, expr.C("B.b_key"), expr.C("A.a_key")),
			expr.Eq(expr.C("B.b_val"), expr.C("A.a_val")),
		)},
	}
	return algebra.NewRestrict(algebra.NewScan("A", "A"), algebra.ExistsPred(sub))
}

// TestParallelDeterminism pins the morsel scheduler's ordering
// guarantee on the paper corpus: serial execution and parallel
// execution at 2 and 8 workers must produce byte-identical results —
// same rows, same order — for every strategy. Sizes are chosen past
// the morsel threshold (2×MorselRows input rows) so the parallel
// pipelines, the hash-join build, and the GMDJ detail chunking
// actually engage; known-quadratic contenders (fig4's set-difference
// unnesting and basic GMDJ) are filtered the same way the benchmark
// caps them.
func TestParallelDeterminism(t *testing.T) {
	r := DefaultRunner()
	cases := []struct {
		exp   *Experiment
		size  Size
		query algebra.Node // overrides exp.Query when non-nil
		// wantEmpty: the corpus query is known to return no rows at
		// this size; the assertion then only pins agreement, and a
		// companion case covers the non-empty path.
		wantEmpty bool
		skip      map[string]bool
	}{
		// Quantified ALL with ≠ correlation, exactly the fig4 query:
		// empty result by construction, exercising full-input
		// short-circuit under parallel detail scans.
		{exp: r.Fig4(), size: Size{Label: "12k/12k", Outer: 12_000, Inner: 12_000},
			wantEmpty: true,
			skip:      map[string]bool{"native": true, "unnest": true, "gmdj": true}},
		// Same KeyPair catalog, EXISTS flavor: ~all 12k rows survive,
		// so morsel buffer concatenation order is actually observable.
		{exp: r.Fig4(), size: Size{Label: "12k/12k-exists", Outer: 12_000, Inner: 12_000},
			query: keyPairExists(),
			skip:  map[string]bool{"native": true, "unnest": true}},
		// Tree-nested EXISTS over TPC-R: equi-key hash join (unnest)
		// builds morsel-parallel over 20k orders; GMDJ detail scans
		// chunk the same rows. Unindexed tuple iteration is excluded on
		// cost, exactly as the benchmark caps it.
		{exp: r.Fig5(), size: Size{Label: "1k/20k", Outer: 1_000, Inner: 20_000},
			skip: map[string]bool{"native-noidx": true}},
	}
	for _, c := range cases {
		cat := c.exp.Build(c.size)
		if c.exp.Prepare != nil {
			if err := c.exp.Prepare(cat); err != nil {
				t.Fatal(err)
			}
		}
		plan := c.query
		if plan == nil {
			plan = c.exp.Query(c.size)
		}
		for _, v := range c.exp.Variants {
			if c.skip[v.Name] {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s/%s", c.exp.ID, c.size.Label, v.Name), func(t *testing.T) {
				eng := engine.New(cat)
				eng.SetUseIndexes(v.UseIndexes)
				phys, err := eng.Plan(plan, v.Strategy)
				if err != nil {
					t.Fatal(err)
				}
				eng.SetParallelism(1)
				want, err := eng.Run(phys, engine.Native) // already rewritten
				if err != nil {
					t.Fatal(err)
				}
				if !c.wantEmpty && want.Len() == 0 {
					t.Fatalf("degenerate corpus: %s/%s returned no rows", c.exp.ID, v.Name)
				}
				for _, workers := range []int{2, 8} {
					eng.SetParallelism(workers)
					got, err := eng.Run(phys, engine.Native)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if got.String() != want.String() {
						t.Fatalf("workers=%d: output differs from serial:\n%s", workers, want.Diff(got))
					}
				}
			})
		}
	}
}
