// Package benchlab defines the paper's experiments (Figures 2–5 of the
// evaluation section) as reproducible workloads: data, query, strategy
// matrix, and size sweep. The root bench_test.go and cmd/benchfig both
// drive these definitions, so `go test -bench` and the CLI report the
// same experiments.
//
// Sizes scale with Runner.Scale (1.0 = the paper's row counts). Some
// strategy/size combinations are deliberately skipped with a note when
// the strategy is known to blow up combinatorially — mirroring the
// paper, which reports the join-unnesting of Figure 4 exceeding 7
// hours at 20k rows.
package benchlab

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/storage"
)

// Variant is one line in a figure: a strategy plus environment tweaks
// (index availability).
type Variant struct {
	// Name is the series label ("native", "gmdj-opt", "native-noidx").
	Name string
	// Strategy picks the rewrite.
	Strategy engine.Strategy
	// UseIndexes controls secondary-index use (native strategy only).
	UseIndexes bool
	// MaxInner skips sizes whose inner cardinality exceeds this bound
	// (0 = unlimited). Used for known-quadratic contenders.
	MaxInner int
	// SkipNote explains a skip in reports.
	SkipNote string
	// Workers, when positive, overrides the runner's execution degree
	// for this variant — how the parallel-speedup figure sweeps 1/2/4
	// workers over one workload.
	Workers int
}

// Size is one point of a figure's sweep.
type Size struct {
	Label string
	Outer int
	Inner int
}

// Experiment is one figure of the paper.
type Experiment struct {
	ID       string
	Title    string
	Sizes    []Size
	Variants []Variant
	// Build constructs the catalog for a size (deterministic).
	Build func(s Size) *storage.Catalog
	// Query constructs the logical plan for a size.
	Query func(s Size) algebra.Node
	// Prepare runs after catalog construction (index builds).
	Prepare func(cat *storage.Catalog) error
	// Run, when non-nil, replaces the default plan-once/execute-many
	// cell measurement: experiments that measure a whole pipeline (the
	// prepared-replay figure times compile+bind+execute per query, not
	// a pre-planned tree) own their timing loop. It must honor
	// r.Repeat and fill Result.Elapsed with a per-query time.
	Run func(r *Runner, exp *Experiment, s Size, v Variant) (Result, error)
}

// Result is one measured cell.
type Result struct {
	Figure   string        `json:"figure"`
	Variant  string        `json:"variant"`
	Label    string        `json:"label"`
	Outer    int           `json:"outer"`
	Inner    int           `json:"inner"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Rows     int           `json:"rows"`
	Skipped  bool          `json:"skipped,omitempty"`
	SkipNote string        `json:"skip_note,omitempty"`
	// Counters are the subtree-aggregated operator counters from one
	// untimed observed run (Runner.CollectStats): detail rows scanned,
	// θ-probes, tuples retired by completion, short-circuited rows —
	// the quantities that explain *why* a strategy won its cell.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Stats is the full per-operator statistics tree from the same
	// observed run.
	Stats *obs.Op `json:"stats,omitempty"`
}

// Runner executes experiments.
type Runner struct {
	// Scale multiplies the paper's row counts (1.0 = paper scale).
	Scale float64
	// Repeat measures each cell this many times and keeps the minimum
	// (default 1).
	Repeat int
	// Workers is the morsel-driven execution degree (0/1 = serial) —
	// GMDJ detail scans, scan/filter/project pipelines, and hash-join
	// build/probe all honor it. Benchmarks keep the serial default so
	// figures measure algorithmic work unless a variant opts in.
	Workers int
	// Verify cross-checks all variants of a size against each other
	// and records a mismatch as an error.
	Verify bool
	// Budget bounds each cell (timeout and/or materialization caps). A
	// cell that exceeds it is recorded as a DNF — the same semantics the
	// paper uses for its 7-hour join-unnesting cutoff — instead of
	// failing the whole sweep.
	Budget engine.Budget
	// CollectStats adds one untimed observed run per cell and records
	// its per-operator statistics into Result.Stats/Counters. The timed
	// measurements are unaffected.
	CollectStats bool
}

// DefaultRunner uses a laptop-friendly 1/16 scale.
func DefaultRunner() *Runner {
	return &Runner{Scale: 1.0 / 16.0, Repeat: 1, Verify: true}
}

func (r *Runner) scaleN(n int) int {
	v := int(float64(n) * r.Scale)
	if v < 10 {
		v = 10
	}
	return v
}

// Experiments returns all four figures at the runner's scale.
func (r *Runner) Experiments() []*Experiment {
	return []*Experiment{r.Fig2(), r.Fig3(), r.Fig4(), r.Fig5()}
}

// AllExperiments additionally includes the extension experiments
// beyond the paper's figures.
func (r *Runner) AllExperiments() []*Experiment {
	return append(r.Experiments(), r.ExtCoalesce(), r.Prepared(), r.Memory(), r.Parallel())
}

// Experiment returns one figure by id ("fig2".."fig5",
// "ext-coalesce", "prepared", "memory", "parallel").
func (r *Runner) Experiment(id string) (*Experiment, error) {
	for _, e := range r.AllExperiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("benchlab: unknown experiment %q", id)
}

// RunCell executes one (experiment, size, variant) cell.
func (r *Runner) RunCell(exp *Experiment, s Size, v Variant) (Result, error) {
	res := Result{Figure: exp.ID, Variant: v.Name, Label: s.Label, Outer: s.Outer, Inner: s.Inner}
	if v.MaxInner > 0 && s.Inner > v.MaxInner {
		res.Skipped = true
		res.SkipNote = v.SkipNote
		return res, nil
	}
	if exp.Run != nil {
		return exp.Run(r, exp, s, v)
	}
	cat := exp.Build(s)
	if exp.Prepare != nil {
		if err := exp.Prepare(cat); err != nil {
			return res, err
		}
	}
	eng := engine.New(cat)
	eng.SetUseIndexes(v.UseIndexes)
	if v.Workers > 0 {
		eng.SetParallelism(v.Workers)
	} else {
		eng.SetGMDJWorkers(r.Workers)
	}
	eng.SetBudget(r.Budget)
	plan := exp.Query(s)
	// Plan once outside the timed region: the paper measures query
	// evaluation; rewriting is microseconds either way.
	physical, err := eng.Plan(plan, v.Strategy)
	if err != nil {
		return res, fmt.Errorf("%s/%s: planning: %w", exp.ID, v.Name, err)
	}
	repeat := r.Repeat
	if repeat < 1 {
		repeat = 1
	}
	best := time.Duration(0)
	for i := 0; i < repeat; i++ {
		start := time.Now()
		out, err := eng.Run(physical, engine.Native) // already rewritten; Native = evaluate as-is
		if err != nil {
			if errors.Is(err, govern.ErrTimeout) || errors.Is(err, govern.ErrRowBudget) || errors.Is(err, govern.ErrMemBudget) {
				res.Skipped = true
				res.SkipNote = fmt.Sprintf("exceeded runner budget (%v)", err)
				return res, nil
			}
			return res, fmt.Errorf("%s/%s: %w", exp.ID, v.Name, err)
		}
		el := time.Since(start)
		if i == 0 || el < best {
			best = el
		}
		res.Rows = out.Len()
	}
	res.Elapsed = best
	if r.CollectStats {
		_, root, err := eng.RunObserved(context.Background(), physical, engine.Native)
		if err != nil {
			return res, fmt.Errorf("%s/%s: observed run: %w", exp.ID, v.Name, err)
		}
		res.Stats = root
		res.Counters = root.Totals()
	}
	return res, nil
}

// RunExperiment sweeps all sizes × variants of a figure, optionally
// verifying result agreement per size.
func (r *Runner) RunExperiment(exp *Experiment) ([]Result, error) {
	var results []Result
	for _, s := range exp.Sizes {
		rowsSeen := -1
		for _, v := range exp.Variants {
			res, err := r.RunCell(exp, s, v)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
			if r.Verify && !res.Skipped {
				if rowsSeen >= 0 && res.Rows != rowsSeen {
					return nil, fmt.Errorf("benchlab: %s size %s: variant %s returned %d rows, previous variants returned %d",
						exp.ID, s.Label, v.Name, res.Rows, rowsSeen)
				}
				rowsSeen = res.Rows
			}
		}
	}
	return results, nil
}

// FormatCounters renders the captured per-cell operator counters
// (Runner.CollectStats) as one line per measured cell — the textual
// companion to the richer per-operator trees in the JSON output.
func FormatCounters(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		if r.Skipped || len(r.Counters) == 0 {
			continue
		}
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  %s/%s %s:", r.Figure, r.Variant, r.Label)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, r.Counters[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable renders results for one figure as an aligned table:
// rows are sizes, columns are variants.
func FormatTable(results []Result) string {
	if len(results) == 0 {
		return "(no results)\n"
	}
	var variants []string
	seenV := map[string]bool{}
	var labels []string
	seenL := map[string]bool{}
	cells := map[[2]string]Result{}
	for _, r := range results {
		if !seenV[r.Variant] {
			seenV[r.Variant] = true
			variants = append(variants, r.Variant)
		}
		if !seenL[r.Label] {
			seenL[r.Label] = true
			labels = append(labels, r.Label)
		}
		cells[[2]string{r.Label, r.Variant}] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "size")
	for _, v := range variants {
		fmt.Fprintf(&b, "%16s", v)
	}
	fmt.Fprintf(&b, "%10s\n", "rows")
	for _, l := range labels {
		fmt.Fprintf(&b, "%-18s", l)
		rows := -1
		for _, v := range variants {
			c, ok := cells[[2]string{l, v}]
			switch {
			case !ok:
				fmt.Fprintf(&b, "%16s", "-")
			case c.Skipped:
				fmt.Fprintf(&b, "%16s", "DNF*")
			default:
				fmt.Fprintf(&b, "%16s", c.Elapsed.Round(10*time.Microsecond))
				rows = c.Rows
			}
		}
		if rows >= 0 {
			fmt.Fprintf(&b, "%10d", rows)
		}
		b.WriteByte('\n')
	}
	var notes []string
	noted := map[string]bool{}
	for _, r := range results {
		if r.Skipped && r.SkipNote != "" && !noted[r.SkipNote] {
			noted[r.SkipNote] = true
			notes = append(notes, r.SkipNote)
		}
	}
	sort.Strings(notes)
	for _, n := range notes {
		fmt.Fprintf(&b, "DNF*: %s\n", n)
	}
	return b.String()
}
