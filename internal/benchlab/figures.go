package benchlab

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// sizeLabel renders "1000/300k".
func sizeLabel(outer, inner int) string {
	return fmt.Sprintf("%d/%s", outer, kilo(inner))
}

func kilo(n int) string {
	switch {
	case n >= 1_000_000 && n%100_000 == 0:
		return fmt.Sprintf("%.1fM", float64(n)/1_000_000)
	case n >= 1_000:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// tpcrCatalog builds a customer/orders catalog with the requested
// cardinalities (lineitems scaled to 2× orders for Figure 5 realism).
func tpcrCatalog(customers, orders int) *storage.Catalog {
	return datagen.TPCR(datagen.TPCROpts{
		Customers: customers,
		Orders:    orders,
		Lineitems: 0,
		Suppliers: 10,
		Parts:     100,
		Seed:      uint64(customers)*1_000_003 + uint64(orders),
	})
}

func indexOrdersCustkey(cat *storage.Catalog) error {
	t, err := cat.Table("orders")
	if err != nil {
		return err
	}
	return t.BuildHashIndex("o_custkey")
}

// Fig2 — EXISTS subquery. Outer block 1000 rows (customers), subquery
// block 300k..1.2M rows (orders). Series: native with and without
// indexes, join unnesting, GMDJ. Paper shape: GMDJ ≈ joins; the DBMS's
// specialized EXISTS evaluation trails them (our in-memory native with
// a hash index is faster than the paper's disk-based DBMS, so the
// unindexed native line is the one comparable to the paper's native).
func (r *Runner) Fig2() *Experiment {
	var sizes []Size
	outer := 1000
	for _, inner := range []int{300_000, 600_000, 900_000, 1_200_000} {
		in := r.scaleN(inner)
		sizes = append(sizes, Size{Label: sizeLabel(outer, in), Outer: outer, Inner: in})
	}
	return &Experiment{
		ID:    "fig2",
		Title: "EXISTS subquery (Figure 2)",
		Sizes: sizes,
		Variants: []Variant{
			{Name: "native", Strategy: engine.Native, UseIndexes: true},
			{Name: "native-noidx", Strategy: engine.Native, UseIndexes: false,
				MaxInner: r.scaleN(600_000),
				SkipNote: "unindexed tuple iteration scans the full inner block per outer row; capped to keep runs finite"},
			{Name: "unnest", Strategy: engine.Unnest, UseIndexes: true},
			{Name: "gmdj", Strategy: engine.GMDJ, UseIndexes: true},
			{Name: "gmdj-opt", Strategy: engine.GMDJOpt, UseIndexes: true},
		},
		Build: func(s Size) *storage.Catalog {
			return tpcrCatalog(s.Outer, s.Inner)
		},
		Prepare: indexOrdersCustkey,
		Query: func(Size) algebra.Node {
			sub := &algebra.Subquery{
				Source: algebra.NewScan("orders", "O"),
				Where: &algebra.Atom{E: expr.NewAnd(
					expr.Eq(expr.C("O.o_custkey"), expr.C("C.c_custkey")),
					expr.NewCmp(value.GT, expr.C("O.o_totalprice"), expr.FloatLit(400_000)),
				)},
			}
			return algebra.NewRestrict(algebra.NewScan("customer", "C"), algebra.ExistsPred(sub))
		},
	}
}

// Fig3 — comparison predicate against an aggregate subquery. Outer
// block 500..2000 rows, subquery block 300k..1.2M rows. The paper's
// native engine ran a plain nested loop; the unindexed native variant
// reproduces that line, while join unnesting (aggregate-then-outer-
// join) and the GMDJ stay flat.
func (r *Runner) Fig3() *Experiment {
	var sizes []Size
	outers := []int{500, 1000, 1500, 2000}
	inners := []int{300_000, 600_000, 900_000, 1_200_000}
	for i := range outers {
		out, in := r.scaleN(outers[i]), r.scaleN(inners[i])
		sizes = append(sizes, Size{Label: sizeLabel(out, in), Outer: out, Inner: in})
	}
	return &Experiment{
		ID:    "fig3",
		Title: "Aggregate comparison subquery (Figure 3)",
		Sizes: sizes,
		Variants: []Variant{
			{Name: "native-nl", Strategy: engine.Native, UseIndexes: false,
				MaxInner: r.scaleN(600_000),
				SkipNote: "plain nested loop is O(|outer|·|inner|); capped to keep runs finite (the paper's native line)"},
			{Name: "native-idx", Strategy: engine.Native, UseIndexes: true},
			{Name: "unnest", Strategy: engine.Unnest, UseIndexes: true},
			{Name: "gmdj", Strategy: engine.GMDJ, UseIndexes: true},
			{Name: "gmdj-opt", Strategy: engine.GMDJOpt, UseIndexes: true},
		},
		Build: func(s Size) *storage.Catalog {
			return tpcrCatalog(s.Outer, s.Inner)
		},
		Prepare: indexOrdersCustkey,
		Query: func(Size) algebra.Node {
			// Customers whose account balance (in cents) exceeds the
			// average price of their own orders.
			sub := &algebra.Subquery{
				Source: algebra.NewScan("orders", "O"),
				Where:  &algebra.Atom{E: expr.Eq(expr.C("O.o_custkey"), expr.C("C.c_custkey"))},
				Agg:    &agg.Spec{Func: agg.Avg, Arg: expr.C("O.o_totalprice")},
			}
			left := expr.NewArith(expr.OpMul, expr.C("C.c_acctbal"), expr.IntLit(25))
			return algebra.NewRestrict(algebra.NewScan("customer", "C"),
				&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GT, Left: left, Sub: sub})
		},
	}
}

// Fig4 — quantified ALL with a ≠ correlation on key attributes; both
// blocks 40k..160k rows. No equality binding exists anywhere, so hash
// strategies are useless: the native smart nested loop (early exit on
// the first counterexample) and the completion-optimized GMDJ do well;
// the basic GMDJ degenerates to tuple iteration and classical join
// unnesting materializes a quadratic counterexample join (the paper
// reports > 7 hours at 20k rows; we cap both).
func (r *Runner) Fig4() *Experiment {
	var sizes []Size
	for _, n := range []int{40_000, 80_000, 120_000, 160_000} {
		rows := r.scaleN(n)
		sizes = append(sizes, Size{Label: sizeLabel(rows, rows), Outer: rows, Inner: rows})
	}
	cap4 := r.scaleN(80_000)
	return &Experiment{
		ID:    "fig4",
		Title: "Quantified ALL with ≠ correlation (Figure 4)",
		Sizes: sizes,
		Variants: []Variant{
			{Name: "native", Strategy: engine.Native, UseIndexes: true},
			{Name: "unnest", Strategy: engine.Unnest, UseIndexes: true,
				MaxInner: cap4,
				SkipNote: "set-difference unnesting materializes the quadratic counterexample join (paper: >7h at 20k rows)"},
			{Name: "gmdj", Strategy: engine.GMDJ, UseIndexes: true,
				MaxInner: cap4,
				SkipNote: "basic GMDJ without completion mimics tuple iteration on bindingless θ (paper: 3 min at 20k rows)"},
			{Name: "gmdj-opt", Strategy: engine.GMDJOpt, UseIndexes: true},
		},
		Build: func(s Size) *storage.Catalog {
			return datagen.KeyPair(datagen.KeyPairOpts{Rows: s.Outer, Seed: uint64(s.Outer)})
		},
		Query: func(Size) algebra.Node {
			// A-rows whose value differs from every B-value carried by
			// a different key.
			sub := &algebra.Subquery{
				Source: algebra.NewScan("B", "B"),
				Where:  &algebra.Atom{E: expr.NewCmp(value.NE, expr.C("B.b_key"), expr.C("A.a_key"))},
				OutCol: expr.C("B.b_val"),
			}
			return algebra.NewRestrict(algebra.NewScan("A", "A"),
				&algebra.SubPred{Kind: algebra.CmpAll, Op: value.NE, Left: expr.C("A.a_val"), Sub: sub})
		},
	}
}

// Fig5 — two tree-nested EXISTS subqueries over the same detail table
// (disjoint predicates), outer block 1000 rows, inner blocks 300k..1.2M
// rows each. Join unnesting needs two separate joins; the optimized
// GMDJ coalesces both subqueries into a single scan. The unindexed
// native variant shows the index dependence the paper highlights (GMDJ
// performance is unchanged by dropping indexes).
func (r *Runner) Fig5() *Experiment {
	var sizes []Size
	outer := 1000
	for _, inner := range []int{300_000, 600_000, 900_000, 1_200_000} {
		in := r.scaleN(inner)
		sizes = append(sizes, Size{Label: sizeLabel(outer, in), Outer: outer, Inner: in})
	}
	return &Experiment{
		ID:    "fig5",
		Title: "Tree-nested EXISTS predicates (Figure 5)",
		Sizes: sizes,
		Variants: []Variant{
			{Name: "native-idx", Strategy: engine.Native, UseIndexes: true},
			{Name: "native-noidx", Strategy: engine.Native, UseIndexes: false,
				MaxInner: r.scaleN(600_000),
				SkipNote: "without indexes tuple iteration rescans both inner blocks per outer row; capped to keep runs finite"},
			{Name: "unnest", Strategy: engine.Unnest, UseIndexes: true},
			{Name: "gmdj", Strategy: engine.GMDJ, UseIndexes: true},
			{Name: "gmdj-opt", Strategy: engine.GMDJOpt, UseIndexes: true},
		},
		Build: func(s Size) *storage.Catalog {
			return tpcrCatalog(s.Outer, s.Inner)
		},
		Prepare: indexOrdersCustkey,
		Query: func(Size) algebra.Node {
			mk := func(alias, status string, op value.CmpOp, price float64) *algebra.Subquery {
				return &algebra.Subquery{
					Source: algebra.NewScan("orders", alias),
					Where: &algebra.Atom{E: expr.NewAnd(
						expr.Eq(expr.C(alias+".o_custkey"), expr.C("C.c_custkey")),
						expr.Eq(expr.C(alias+".o_orderstatus"), expr.StrLit(status)),
						expr.NewCmp(op, expr.C(alias+".o_totalprice"), expr.FloatLit(price)),
					)},
				}
			}
			return algebra.NewRestrict(algebra.NewScan("customer", "C"),
				algebra.And(
					algebra.ExistsPred(mk("O1", "O", value.GT, 300_000)),
					algebra.ExistsPred(mk("O2", "F", value.LT, 150_000)),
				))
		},
	}
}
