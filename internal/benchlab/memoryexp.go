package benchlab

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/sql"
)

// memoryPoolBytes is the constrained pool for the spill and kill arms:
// small enough that every size's GMDJ base state (Hours rows x ~200
// bytes of estimated state) overflows it and the engine must degrade.
const memoryPoolBytes = 48 << 10

// memoryQuery is the Example 2.3-shaped hour/flow workload: the GMDJ
// base is the Hours dimension, whose per-row hash state is what the
// memory pool squeezes.
const memoryQuery = `SELECT h.HourDsc FROM Hours h WHERE EXISTS (
  SELECT * FROM Flow f
  WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
    AND f.Protocol = 'FTP')`

// Memory is the constrained-memory trajectory experiment: the same
// workload under three memory regimes —
//
//	unlimited — no pool; the baseline every degradation is judged
//	            against;
//	spill     — a 48 KiB pool with a scratch store: the GMDJ base
//	            state partitions by hash prefix and spills cold
//	            partitions, paying one extra detail scan per spilled
//	            partition (1+k scans) but finishing with identical
//	            rows;
//	kill      — the same pool with spilling disabled: exhaustion is a
//	            typed ErrMemBudget, recorded as a DNF cell — the
//	            pre-spill behavior the degradation replaces.
func (r *Runner) Memory() *Experiment {
	exp := &Experiment{
		ID:    "memory",
		Title: "Constrained-memory trajectories: unlimited vs spill-to-disk vs kill on the hour/flow workload",
		Sizes: []Size{
			{Label: "500 hours", Outer: 500, Inner: r.scaleN(32_000)},
			{Label: "1000 hours", Outer: 1000, Inner: r.scaleN(64_000)},
			{Label: "2000 hours", Outer: 2000, Inner: r.scaleN(128_000)},
		},
		Variants: []Variant{
			{Name: "unlimited", Strategy: engine.GMDJOpt},
			{Name: "spill", Strategy: engine.GMDJOpt},
			{Name: "kill", Strategy: engine.GMDJOpt},
		},
	}
	exp.Run = r.runMemory
	return exp
}

// runMemory measures one (size, variant) cell of the memory
// experiment. The outer count is the Hours dimension (the GMDJ base);
// the inner count is Flow rows.
func (r *Runner) runMemory(_ *Runner, exp *Experiment, s Size, v Variant) (Result, error) {
	res := Result{Figure: exp.ID, Variant: v.Name, Label: s.Label, Outer: s.Outer, Inner: s.Inner}
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: s.Inner, Hours: s.Outer, Users: 40, Seed: 11})
	eng := engine.New(cat)
	eng.SetGMDJWorkers(r.Workers)
	eng.SetBudget(r.Budget)
	switch v.Name {
	case "spill":
		dir, err := os.MkdirTemp("", "gmdj-bench-spill-")
		if err != nil {
			return res, fmt.Errorf("memory/spill: %w", err)
		}
		defer os.RemoveAll(dir)
		eng.SetMemoryLimit(memoryPoolBytes)
		eng.SetSpillDir(dir)
		defer eng.Close()
	case "kill":
		eng.SetMemoryLimit(memoryPoolBytes)
		eng.SetSpillDir("") // exhaustion aborts instead of degrading
	}

	plan, err := sql.ParseAndResolve(memoryQuery, eng)
	if err != nil {
		return res, fmt.Errorf("memory/%s: %w", v.Name, err)
	}
	physical, err := eng.Plan(plan, v.Strategy)
	if err != nil {
		return res, fmt.Errorf("memory/%s: planning: %w", v.Name, err)
	}

	repeat := r.Repeat
	if repeat < 1 {
		repeat = 1
	}
	best := time.Duration(0)
	for i := 0; i < repeat; i++ {
		start := time.Now()
		out, err := eng.Run(physical, engine.Native) // already rewritten
		if err != nil {
			if errors.Is(err, govern.ErrMemBudget) {
				res.Skipped = true
				res.SkipNote = fmt.Sprintf("memory kill regime: %d KiB pool with spilling disabled (%v)",
					memoryPoolBytes>>10, govern.ErrMemBudget)
				return res, nil
			}
			if errors.Is(err, govern.ErrTimeout) || errors.Is(err, govern.ErrRowBudget) {
				res.Skipped = true
				res.SkipNote = fmt.Sprintf("exceeded runner budget (%v)", err)
				return res, nil
			}
			return res, fmt.Errorf("memory/%s: %w", v.Name, err)
		}
		el := time.Since(start)
		if i == 0 || el < best {
			best = el
		}
		res.Rows = out.Len()
	}
	res.Elapsed = best
	if r.CollectStats {
		_, root, err := eng.RunObserved(context.Background(), physical, engine.Native)
		if err != nil {
			return res, fmt.Errorf("memory/%s: observed run: %w", v.Name, err)
		}
		res.Stats = root
		res.Counters = root.Totals()
	}
	return res, nil
}
