package benchlab

import (
	"fmt"
	"time"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/plancache"
	"github.com/olaplab/gmdj/internal/sql"
	"github.com/olaplab/gmdj/internal/value"
)

// preparedIters is how many queries one timed measurement replays; the
// reported Elapsed is per query.
const preparedIters = 32

// preparedTemplate is Example 2.3's coalescing workload (the paper's
// Table 1 detail relation) with the three destination constants
// parameterized — the dashboard-replay shape: one template, many
// constant vectors.
const preparedTemplate = `SELECT u.IPAddress FROM User u
 WHERE NOT EXISTS (SELECT * FROM Flow f1 WHERE f1.SourceIP = u.IPAddress AND f1.DestIP = %s)
   AND EXISTS     (SELECT * FROM Flow f2 WHERE f2.SourceIP = u.IPAddress AND f2.DestIP = %s)
   AND NOT EXISTS (SELECT * FROM Flow f3 WHERE f3.SourceIP = u.IPAddress AND f3.DestIP = %s)`

// preparedDests rotates the paper's well-known destination IPs through
// the three placeholder roles, so consecutive queries differ in
// constants but share the template.
var preparedDests = [][3]string{
	{"167.167.167.0", "168.168.168.0", "169.169.169.0"},
	{"168.168.168.0", "169.169.169.0", "167.167.167.0"},
	{"169.169.169.0", "167.167.167.0", "168.168.168.0"},
}

// Prepared is the prepared-replay experiment: the same Example 2.3
// query replayed preparedIters times with rotating constants, under
// three API regimes —
//
//	unprepared    — every replay parses, resolves, and strategy-
//	                rewrites from scratch (the pre-Prepare API);
//	prepared      — the template compiles once; each replay binds
//	                parameters into the cached physical plan;
//	prepared-memo — prepared, plus the cross-query result memo, so
//	                replays also reuse the GMDJ detail-side hash
//	                vectors across queries.
func (r *Runner) Prepared() *Experiment {
	exp := &Experiment{
		ID:    "prepared",
		Title: "Prepared replay of the Example 2.3 workload (compile-once + memo vs per-query compilation)",
		Sizes: []Size{
			{Label: "2k flows", Outer: 40, Inner: r.scaleN(2_000)},
			{Label: "16k flows", Outer: 40, Inner: r.scaleN(16_000)},
			{Label: "96k flows", Outer: 40, Inner: r.scaleN(96_000)},
		},
		Variants: []Variant{
			{Name: "unprepared", Strategy: engine.GMDJOpt},
			{Name: "prepared", Strategy: engine.GMDJOpt},
			{Name: "prepared-memo", Strategy: engine.GMDJOpt},
		},
	}
	exp.Run = r.runPrepared
	return exp
}

// runPrepared measures one (size, variant) cell of the prepared
// experiment.
func (r *Runner) runPrepared(_ *Runner, exp *Experiment, s Size, v Variant) (Result, error) {
	res := Result{Figure: exp.ID, Variant: v.Name, Label: s.Label, Outer: s.Outer, Inner: s.Inner}
	cat := datagen.Netflow(datagen.NetflowOpts{Flows: s.Inner, Hours: 24, Users: s.Outer, Seed: 9})
	eng := engine.New(cat)
	eng.SetGMDJWorkers(r.Workers)
	eng.SetBudget(r.Budget)
	if v.Name == "prepared-memo" {
		eng.SetResultCache(plancache.NewResults(0))
	}

	// The prepared arms compile the template once, outside the replay
	// loop: this is exactly what Prepare buys.
	var tmpl algebra.Node
	if v.Name != "unprepared" {
		q := fmt.Sprintf(preparedTemplate, "$1", "$2", "$3")
		plan, err := sql.ParseAndResolve(q, eng)
		if err != nil {
			return res, fmt.Errorf("prepared/%s: %w", v.Name, err)
		}
		tmpl, err = eng.Plan(plan, v.Strategy)
		if err != nil {
			return res, fmt.Errorf("prepared/%s: planning: %w", v.Name, err)
		}
	}

	replay := func() error {
		for i := 0; i < preparedIters; i++ {
			d := preparedDests[i%len(preparedDests)]
			var phys algebra.Node
			if v.Name == "unprepared" {
				q := fmt.Sprintf(preparedTemplate,
					"'"+d[0]+"'", "'"+d[1]+"'", "'"+d[2]+"'")
				plan, err := sql.ParseAndResolve(q, eng)
				if err != nil {
					return err
				}
				phys, err = eng.Plan(plan, v.Strategy)
				if err != nil {
					return err
				}
			} else {
				var err error
				phys, err = algebra.BindParams(tmpl, []value.Value{
					value.Str(d[0]), value.Str(d[1]), value.Str(d[2]),
				})
				if err != nil {
					return err
				}
			}
			out, err := eng.Run(phys, engine.Native) // already rewritten
			if err != nil {
				return err
			}
			res.Rows = out.Len()
		}
		return nil
	}

	// Warm once untimed (memo population, allocator steady state), then
	// measure r.Repeat times keeping the best.
	if err := replay(); err != nil {
		return res, fmt.Errorf("prepared/%s: %w", v.Name, err)
	}
	repeat := r.Repeat
	if repeat < 1 {
		repeat = 1
	}
	best := time.Duration(0)
	for i := 0; i < repeat; i++ {
		start := time.Now()
		if err := replay(); err != nil {
			return res, fmt.Errorf("prepared/%s: %w", v.Name, err)
		}
		el := time.Since(start) / preparedIters
		if i == 0 || el < best {
			best = el
		}
	}
	res.Elapsed = best
	return res, nil
}
