package benchlab

import (
	"strings"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/engine"
)

// tinyRunner keeps tests fast: ~1/500 of paper scale.
func tinyRunner() *Runner {
	return &Runner{Scale: 1.0 / 500.0, Repeat: 1, Verify: true}
}

// TestAllExperimentsAgreeAcrossStrategies is the harness's core
// guarantee: every variant of every figure computes the same answer.
func TestAllExperimentsAgreeAcrossStrategies(t *testing.T) {
	r := tinyRunner()
	for _, exp := range r.Experiments() {
		results, err := r.RunExperiment(exp)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		if len(results) == 0 {
			t.Fatalf("%s: no results", exp.ID)
		}
		// At tiny scale nothing should be skipped at the smallest size.
		ranAny := false
		for _, res := range results {
			if !res.Skipped {
				ranAny = true
				if res.Elapsed <= 0 {
					t.Errorf("%s/%s/%s: non-positive elapsed", res.Figure, res.Variant, res.Label)
				}
			}
		}
		if !ranAny {
			t.Errorf("%s: every cell skipped", exp.ID)
		}
	}
}

func TestExperimentLookup(t *testing.T) {
	r := tinyRunner()
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5"} {
		exp, err := r.Experiment(id)
		if err != nil || exp.ID != id {
			t.Errorf("Experiment(%q) = %v, %v", id, exp, err)
		}
	}
	if _, err := r.Experiment("fig9"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestSizeCapsMarkSkipped(t *testing.T) {
	r := tinyRunner()
	exp := r.Fig4()
	// The largest fig4 size must exceed the caps for unnest/basic gmdj.
	big := exp.Sizes[len(exp.Sizes)-1]
	for _, v := range exp.Variants {
		if v.Name != "unnest" && v.Name != "gmdj" {
			continue
		}
		res, err := r.RunCell(exp, big, v)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Skipped {
			t.Errorf("%s at %s should be capped", v.Name, big.Label)
		}
		if res.SkipNote == "" {
			t.Errorf("%s skip lacks a note", v.Name)
		}
	}
}

func TestFormatTable(t *testing.T) {
	results := []Result{
		{Figure: "fig2", Variant: "native", Label: "1000/300k", Elapsed: 12 * time.Millisecond, Rows: 42},
		{Figure: "fig2", Variant: "gmdj", Label: "1000/300k", Elapsed: 3 * time.Millisecond, Rows: 42},
		{Figure: "fig2", Variant: "unnest", Label: "1000/600k", Skipped: true, SkipNote: "too big"},
	}
	out := FormatTable(results)
	for _, want := range []string{"native", "gmdj", "1000/300k", "DNF*", "too big", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if FormatTable(nil) == "" {
		t.Error("empty results should render a placeholder")
	}
}

func TestRunnerVerifyCatchesMismatches(t *testing.T) {
	// Sanity for the Verify machinery itself: with Verify off, nothing
	// is compared even for mismatched variants.
	r := tinyRunner()
	r.Verify = false
	exp := r.Fig2()
	if _, err := r.RunExperiment(exp); err != nil {
		t.Fatalf("unexpected error with Verify off: %v", err)
	}
}

func TestFig4ShapesAtTinyScale(t *testing.T) {
	// The optimized GMDJ should beat the basic GMDJ on the ALL query —
	// the effect completion exists for. Use a slightly larger scale so
	// the quadratic term is visible but quick.
	r := &Runner{Scale: 1.0 / 50.0, Repeat: 1, Verify: true}
	exp := r.Fig4()
	s := exp.Sizes[1] // 80k/50 = 1600 rows
	var basic, opt time.Duration
	for _, v := range exp.Variants {
		if v.Name != "gmdj" && v.Name != "gmdj-opt" {
			continue
		}
		res, err := r.RunCell(exp, s, v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped {
			t.Fatalf("%s skipped at %s", v.Name, s.Label)
		}
		if v.Name == "gmdj" {
			basic = res.Elapsed
		} else {
			opt = res.Elapsed
		}
	}
	if opt >= basic {
		t.Errorf("completion-optimized GMDJ (%v) should beat basic GMDJ (%v) on Figure 4", opt, basic)
	}
}

func TestVariantsCoverExpectedStrategies(t *testing.T) {
	r := tinyRunner()
	for _, exp := range r.Experiments() {
		hasGMDJOpt, hasNative := false, false
		for _, v := range exp.Variants {
			if v.Strategy == engine.GMDJOpt {
				hasGMDJOpt = true
			}
			if v.Strategy == engine.Native {
				hasNative = true
			}
		}
		if !hasGMDJOpt || !hasNative {
			t.Errorf("%s must include native and gmdj-opt variants", exp.ID)
		}
	}
}

func TestKiloFormatting(t *testing.T) {
	cases := map[int]string{500: "500", 1500: "1k", 300_000: "300k", 1_200_000: "1.2M"}
	for n, want := range cases {
		if got := kilo(n); got != want {
			t.Errorf("kilo(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestExtCoalesceExperiment(t *testing.T) {
	r := &Runner{Scale: 1.0 / 2000.0, Repeat: 1, Verify: true}
	exp, err := r.Experiment("ext-coalesce")
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 { // 4 widths × 3 variants
		t.Errorf("results = %d, want 12", len(results))
	}
	if len(r.AllExperiments()) != 8 {
		t.Errorf("AllExperiments = %d, want 8", len(r.AllExperiments()))
	}
}
