package benchlab

import "testing"

func TestPreparedSmoke(t *testing.T) {
	r := &Runner{Scale: 1.0 / 64.0, Repeat: 1}
	exp, err := r.Experiment("prepared")
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable(results))
	if len(results) != 9 {
		t.Fatalf("got %d cells", len(results))
	}
}
