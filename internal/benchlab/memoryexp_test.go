package benchlab

import (
	"strings"
	"testing"
)

// TestMemoryExperiment: the spill arm must finish with the same rows
// as unlimited (RunExperiment's Verify enforces it), and the kill arm
// must record a DNF with the typed-error note — the trajectory the
// figure exists to show.
func TestMemoryExperiment(t *testing.T) {
	r := &Runner{Scale: 1.0 / 100.0, Repeat: 1, Verify: true}
	exp, err := r.Experiment("memory")
	if err != nil {
		t.Fatal(err)
	}
	// One size keeps the test quick; the sweep shape is covered by the
	// CLI run.
	exp.Sizes = exp.Sizes[:1]
	results, err := r.RunExperiment(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	byVariant := map[string]Result{}
	for _, res := range results {
		byVariant[res.Variant] = res
	}
	for _, name := range []string{"unlimited", "spill"} {
		res := byVariant[name]
		if res.Skipped {
			t.Errorf("%s skipped: %s", name, res.SkipNote)
		}
		if res.Rows == 0 {
			t.Errorf("%s returned no rows", name)
		}
	}
	if byVariant["spill"].Rows != byVariant["unlimited"].Rows {
		t.Errorf("spill rows %d != unlimited rows %d",
			byVariant["spill"].Rows, byVariant["unlimited"].Rows)
	}
	kill := byVariant["kill"]
	if !kill.Skipped {
		t.Error("kill arm should DNF under the constrained pool")
	}
	if !strings.Contains(kill.SkipNote, "memory budget") {
		t.Errorf("kill skip note = %q, want the typed-error note", kill.SkipNote)
	}
}
