package benchlab

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/olaplab/gmdj/internal/obs"
)

// A Trajectory is the committed shape of one figure's benchmark run:
// enough to detect performance regressions across commits without
// storing full Result trees. BENCH_<fig>.json files at the repo root
// hold the accepted baseline; scripts/bench_trajectory.sh compares a
// fresh run against them.
type Trajectory struct {
	// Commit identifies the run ("abc1234", or "unknown" outside git).
	Commit string `json:"commit"`
	// Figure is the experiment id ("fig4").
	Figure string `json:"figure"`
	// Scale is the row-count multiplier the run used.
	Scale float64 `json:"scale"`
	// Cells holds one entry per measured (non-skipped) cell.
	Cells []TrajectoryCell `json:"cells"`
}

// TrajectoryCell is one measured cell reduced to its trajectory
// signature: wall time plus the two work counters that explain it.
type TrajectoryCell struct {
	// Strategy is the variant name ("native", "gmdj-opt", ...).
	Strategy string `json:"strategy"`
	// Label is the size label within the figure's sweep.
	Label string `json:"label"`
	// NsPerOp is the cell's best measured wall time in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// RowsScanned sums Rows over every Scan operator in the cell's
	// stats tree (0 when stats were not collected).
	RowsScanned int64 `json:"rows_scanned"`
	// Probes is the cell's aggregated θ-probe counter (GMDJ variants;
	// 0 elsewhere).
	Probes int64 `json:"probes"`
}

// BuildTrajectory reduces a figure's results to its trajectory.
// Skipped (DNF) cells are omitted: their timings are sentinel values,
// not measurements.
func BuildTrajectory(figure, commit string, scale float64, results []Result) Trajectory {
	t := Trajectory{Commit: commit, Figure: figure, Scale: scale}
	for _, r := range results {
		if r.Figure != figure || r.Skipped {
			continue
		}
		t.Cells = append(t.Cells, TrajectoryCell{
			Strategy:    r.Variant,
			Label:       r.Label,
			NsPerOp:     int64(r.Elapsed),
			RowsScanned: scanRows(r),
			Probes:      r.Counters["probes"],
		})
	}
	return t
}

// scanRows walks a cell's stats tree summing base-table scan
// cardinalities.
func scanRows(r Result) int64 {
	if r.Stats == nil {
		return 0
	}
	var sum int64
	stack := []*obs.Op{r.Stats}
	for len(stack) > 0 {
		op := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if strings.HasPrefix(op.Label, "Scan ") {
			sum += op.Rows
		}
		stack = append(stack, op.Children...)
	}
	return sum
}

// ReadTrajectory parses a trajectory JSON file.
func ReadTrajectory(rd io.Reader) (Trajectory, error) {
	var t Trajectory
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&t); err != nil {
		return t, fmt.Errorf("benchlab: parsing trajectory: %w", err)
	}
	return t, nil
}

// WriteTrajectory writes a trajectory as indented JSON with cells in
// a deterministic order, so committed baselines diff cleanly.
func WriteTrajectory(w io.Writer, t Trajectory) error {
	sort.SliceStable(t.Cells, func(i, j int) bool {
		if t.Cells[i].Label != t.Cells[j].Label {
			return t.Cells[i].Label < t.Cells[j].Label
		}
		return t.Cells[i].Strategy < t.Cells[j].Strategy
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Regression is one cell whose current timing exceeds the baseline
// beyond tolerance.
type Regression struct {
	Strategy string
	Label    string
	Base     time.Duration
	Current  time.Duration
}

func (r Regression) String() string {
	ratio := float64(r.Current) / float64(r.Base)
	return fmt.Sprintf("%s/%s: %v -> %v (%.2fx)",
		r.Strategy, r.Label, r.Base.Round(10*time.Microsecond), r.Current.Round(10*time.Microsecond), ratio)
}

// CompareTrajectories matches current cells against the baseline by
// (strategy, label) and reports cells slower than
// base*(1+tolerance)+slack. The absolute slack term keeps sub-
// millisecond cells from flagging on scheduler noise. Cells present
// on only one side are ignored: sweeps legitimately change shape as
// figures grow.
func CompareTrajectories(baseline, current Trajectory, tolerance float64, slack time.Duration) []Regression {
	base := map[[2]string]TrajectoryCell{}
	for _, c := range baseline.Cells {
		base[[2]string{c.Strategy, c.Label}] = c
	}
	var regs []Regression
	for _, c := range current.Cells {
		b, ok := base[[2]string{c.Strategy, c.Label}]
		if !ok {
			continue
		}
		limit := int64(float64(b.NsPerOp)*(1+tolerance)) + int64(slack)
		if c.NsPerOp > limit {
			regs = append(regs, Regression{
				Strategy: c.Strategy, Label: c.Label,
				Base: time.Duration(b.NsPerOp), Current: time.Duration(c.NsPerOp),
			})
		}
	}
	return regs
}
