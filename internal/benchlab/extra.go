package benchlab

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/datagen"
	"github.com/olaplab/gmdj/internal/engine"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// ExtCoalesce is an extension experiment beyond the paper's figures:
// it sweeps the NUMBER OF SUBQUERIES (all over the same detail table)
// instead of the table size, isolating what Proposition 4.1 coalescing
// buys. Basic GMDJ scans the detail table once per subquery; the
// coalesced plan scans it exactly once regardless of k; join unnesting
// performs k separate semi/anti-joins.
//
// The experiment reuses the Size struct: Outer = k (number of
// subqueries), Inner = detail rows.
func (r *Runner) ExtCoalesce() *Experiment {
	detailRows := r.scaleN(800_000)
	var sizes []Size
	for _, k := range []int{1, 2, 4, 8} {
		sizes = append(sizes, Size{
			Label: fmt.Sprintf("%d subqueries", k),
			Outer: k,
			Inner: detailRows,
		})
	}
	return &Experiment{
		ID:    "ext-coalesce",
		Title: "Coalescing width sweep (extension; Prop. 4.1)",
		Sizes: sizes,
		Variants: []Variant{
			{Name: "unnest", Strategy: engine.Unnest, UseIndexes: true},
			{Name: "gmdj", Strategy: engine.GMDJ, UseIndexes: true},
			{Name: "gmdj-opt", Strategy: engine.GMDJOpt, UseIndexes: true},
		},
		Build: func(s Size) *storage.Catalog {
			return datagen.Netflow(datagen.NetflowOpts{
				Flows: s.Inner,
				Hours: 24,
				Users: 64,
				Seed:  uint64(s.Inner),
			})
		},
		Query: func(s Size) algebra.Node {
			// k EXISTS subqueries over Flow, each on a different byte
			// range so their conditions are disjoint (un-mergeable for
			// joins, trivially coalescable for GMDJs).
			preds := make([]algebra.Pred, s.Outer)
			for i := 0; i < s.Outer; i++ {
				alias := fmt.Sprintf("F%d", i)
				lo := int64(i) * 100_000
				preds[i] = algebra.ExistsPred(&algebra.Subquery{
					Source: algebra.NewScan("Flow", alias),
					Where: &algebra.Atom{E: expr.NewAnd(
						expr.Eq(expr.C(alias+".SourceIP"), expr.C("U.IPAddress")),
						expr.NewCmp(value.GE, expr.C(alias+".NumBytes"), expr.IntLit(lo)),
						expr.NewCmp(value.LT, expr.C(alias+".NumBytes"), expr.IntLit(lo+100_000)),
					)},
				})
			}
			return algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.And(preds...))
		},
	}
}
