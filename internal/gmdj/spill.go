package gmdj

import (
	"encoding/binary"
	"fmt"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
)

// This file is the memory-adaptive evaluation regime: when the query's
// reservation cannot hold the whole base state, the base relation is
// partitioned by the top bits of each row's hash ("hash prefix"), cold
// partitions are encoded to checksummed temp files, and each partition
// is evaluated independently with its own bounded state — at the cost
// of one extra full detail scan per additional partition. The paper's
// one-scan guarantee (Prop. 4.1) relaxes to 1+k scans; Stats reports k
// in ExtraDetailScans. Output stays byte-identical to in-memory
// evaluation because every partition row remembers its original base
// position and a single emit pass walks the full base in order.

// minPartitionBytes floors the per-partition budget so pathological
// reservations cannot explode the partition count.
const minPartitionBytes = 16 << 10

// maxSpillParts caps the initial fan-out; worklist splitting handles
// partitions that still do not fit.
const maxSpillParts = 256

// spillPart is one worklist item: a slice of the base relation,
// resident (rows != nil) or evicted to a spill file.
type spillPart struct {
	idx   []int32 // original base positions
	rows  []relation.Tuple
	file  *spill.File
	n     int // row count (valid for both forms)
	depth int // split depth, bounds recursion
}

// evaluateSpilled is Evaluate's degraded regime. est is the rejected
// whole-state estimate; opts.Mem and opts.Spill are non-nil.
func evaluateSpilled(base, detail *relation.Relation, conds []algebra.GMDJCond, opts Options, est int64) (*relation.Relation, error) {
	nBase := len(base.Rows)
	perRow := est / int64(nBase)
	if perRow < 1 {
		perRow = 1
	}

	// Size the initial fan-out so each partition's state fits the
	// reservation's current headroom (floored to keep partition count
	// sane when the reservation is tiny).
	target := opts.Mem.Available() / 2
	if target < minPartitionBytes {
		target = minPartitionBytes
	}
	parts := 1
	for parts < maxSpillParts && est/int64(parts) > target {
		parts *= 2
	}
	if parts < 2 {
		parts = 2
	}
	bits := 0
	for 1<<bits < parts {
		bits++
	}

	// Partition base rows by hash prefix (top bits of the tuple hash).
	groups := make([][]int32, parts)
	for bi, row := range base.Rows {
		pi := int(row.Hash() >> (64 - uint(bits)))
		groups[pi] = append(groups[pi], int32(bi))
	}

	// The first non-empty partition stays resident; the rest are
	// encoded to spill files. Deferred cleanup removes whatever is
	// still on disk when we leave — on success (files are consumed as
	// partitions are processed), on error, on cancellation, and on
	// panic unwinding through this frame alike.
	var work []spillPart
	var liveFiles []*spill.File
	defer func() {
		for _, f := range liveFiles {
			f.Remove()
		}
	}()
	resident := true
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		rows := make([]relation.Tuple, len(g))
		for i, bi := range g {
			rows[i] = base.Rows[bi]
		}
		if resident {
			resident = false
			work = append(work, spillPart{idx: g, rows: rows, n: len(g)})
			continue
		}
		f, err := opts.Spill.Write("gmdj-part", spill.EncodePartition(g, rows))
		if err != nil {
			return nil, err
		}
		liveFiles = append(liveFiles, f)
		work = append(work, spillPart{file: f, n: len(g)})
		if opts.Stats != nil {
			opts.Stats.SpillPartitions++
			opts.Stats.SpillBytesWritten += f.Bytes
		}
	}

	// Compile once against an empty base to obtain the output schema
	// and aggregate layout for the final emit (no per-row state is
	// built), and to count fallback conditions once rather than per
	// partition.
	pe, err := compile(&relation.Relation{Schema: base.Schema}, detail, conds, opts.Completion)
	if err != nil {
		return nil, err
	}
	pe.base = base
	pe.gov, pe.faults, pe.tracer, pe.live = opts.Gov, opts.Faults, opts.Tracer, opts.Live
	if opts.Stats != nil {
		for _, c := range pe.conds {
			if c.index == nil && len(c.baseKey) == 0 {
				opts.Stats.FallbackConds++
			}
		}
	}

	decided := make([]int8, nBase)
	accs := make([][]agg.Accumulator, nBase)
	scans := 0

	for len(work) > 0 {
		part := work[0]
		work = work[1:]
		if err := opts.Gov.Check(); err != nil {
			return nil, err
		}
		if part.file != nil {
			payload, err := part.file.Read()
			if err != nil {
				return nil, err
			}
			if opts.Stats != nil {
				opts.Stats.SpillBytesRead += part.file.Bytes
			}
			part.file.Remove()
			for i, f := range liveFiles {
				if f == part.file {
					liveFiles = append(liveFiles[:i], liveFiles[i+1:]...)
					break
				}
			}
			part.idx, part.rows, err = spill.DecodePartition(payload)
			if err != nil {
				return nil, err
			}
		}

		// Charge this partition's state; a partition that still does not
		// fit splits in two and both halves re-enter the worklist. A
		// single row that does not fit runs uncharged — it cannot shrink,
		// and refusing it would turn degradation back into a kill.
		partEst := int64(part.n) * perRow
		charged := int64(0)
		if err := opts.Mem.Grow(partEst); err != nil {
			if part.n > 1 && part.depth < 20 {
				mid := part.n / 2
				work = append(work,
					spillPart{idx: part.idx[:mid], rows: part.rows[:mid], n: mid, depth: part.depth + 1},
					spillPart{idx: part.idx[mid:], rows: part.rows[mid:], n: part.n - mid, depth: part.depth + 1},
				)
				continue
			}
		} else {
			charged = partEst
		}

		chunk := &relation.Relation{Schema: base.Schema, Rows: part.rows}
		p, err := compile(chunk, detail, conds, opts.Completion)
		if err != nil {
			opts.Mem.Shrink(charged)
			return nil, err
		}
		p.gov, p.faults, p.tracer, p.live = opts.Gov, opts.Faults, opts.Tracer, opts.Live
		p.packed = opts.PackedHash
		if opts.HashCache != nil && opts.DetailID != "" {
			p.attachDetailHashes(opts.HashCache, opts.DetailID, opts.Stats)
		} else if p.packed != nil {
			p.attachPackedHashes(opts.Stats)
		}
		d, a, err := p.run(opts.Workers, opts.Stats)
		opts.Mem.Shrink(charged)
		if err != nil {
			return nil, err
		}
		for i, bi := range part.idx {
			decided[bi] = d[i]
			accs[bi] = a[i]
		}
		scans++
	}
	if opts.Stats != nil && scans > 1 {
		opts.Stats.ExtraDetailScans += int64(scans - 1)
	}
	return pe.emit(decided, accs)
}

// init registers the detail hash-vector codec so cached vectors can
// move through the spill store's cold tier like any relation.
func init() {
	spill.RegisterCodec(spill.Codec{
		Name: "gmdjhashvec",
		Encode: func(v any) ([]byte, bool) {
			vec, ok := v.(*detailHashVec)
			if !ok {
				return nil, false
			}
			buf := binary.AppendUvarint(nil, uint64(len(vec.H)))
			for _, h := range vec.H {
				buf = binary.LittleEndian.AppendUint64(buf, h)
			}
			for _, ok := range vec.OK {
				b := byte(0)
				if ok {
					b = 1
				}
				buf = append(buf, b)
			}
			return buf, true
		},
		Decode: func(data []byte) (any, error) {
			n, w := binary.Uvarint(data)
			if w <= 0 || uint64(len(data)-w) != n*9 {
				return nil, fmt.Errorf("spill codec: bad hash-vector frame")
			}
			vec := &detailHashVec{H: make([]uint64, n), OK: make([]bool, n)}
			pos := w
			for i := range vec.H {
				vec.H[i] = binary.LittleEndian.Uint64(data[pos:])
				pos += 8
			}
			for i := range vec.OK {
				vec.OK[i] = data[pos] != 0
				pos++
			}
			return vec, nil
		},
	})
}
