package gmdj

import (
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// packedCorpus builds a base/detail pair with an equi-binding key that
// includes NULLs and duplicate values, so both the hash and the
// validity vector carry weight.
func packedCorpus() (*relation.Relation, *relation.Relation) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 40; i++ {
		base.Append(relation.Tuple{value.Int(i % 17)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "tag", Type: value.KindString},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	for i := int64(0); i < 500; i++ {
		k := value.Int(i % 17)
		if i%13 == 0 {
			k = value.Null
		}
		tag := "even"
		if i%2 == 1 {
			tag = "odd"
		}
		detail.Append(relation.Tuple{k, value.Str(tag), value.Int(i)})
	}
	return base, detail
}

func packedConds() []algebra.GMDJCond {
	return []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("R.k"), expr.C("B.k")),
		Aggs: []agg.Spec{
			{Func: agg.CountStar, As: "cnt"},
			{Func: agg.Sum, Arg: expr.C("R.v"), As: "sv"},
		},
	}}
}

// TestPackedHashParity: supplying detail hashes from the packed
// columnar segment must yield results identical to row-oriented
// hashing, and the stat must record the packed path was taken.
func TestPackedHashParity(t *testing.T) {
	base, detail := packedCorpus()
	conds := packedConds()

	want, err := Evaluate(base, detail, conds, Options{})
	if err != nil {
		t.Fatal(err)
	}

	seg := storage.BuildSegment("R", detail)
	var stats Stats
	got, err := Evaluate(base, detail, conds, Options{
		Stats:      &stats,
		PackedHash: seg.KeyHashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PackedHashConds != 1 {
		t.Fatalf("PackedHashConds = %d, want 1", stats.PackedHashConds)
	}
	if want.Len() != got.Len() {
		t.Fatalf("packed path returned %d rows, want %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d: packed %v, row-hashed %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestPackedHashSegmentMatchesRowHash checks the vectors themselves:
// the segment's FNV mix must be bit-identical to hashing the
// row-oriented tuples, including multi-column keys and NULL validity.
func TestPackedHashSegmentMatchesRowHash(t *testing.T) {
	_, detail := packedCorpus()
	seg := storage.BuildSegment("R", detail)
	for _, key := range [][]int{{0}, {1}, {0, 1}, {2, 0}} {
		h, ok := seg.KeyHashes(key)
		if len(h) != detail.Len() || len(ok) != detail.Len() {
			t.Fatalf("key %v: vector lengths %d/%d, want %d", key, len(h), len(ok), detail.Len())
		}
		for i, row := range detail.Rows {
			wh, wok := keyHash(row, key)
			if ok[i] != wok || (wok && h[i] != wh) {
				t.Fatalf("key %v row %d: packed (%#x,%v), row hash (%#x,%v)",
					key, i, h[i], ok[i], wh, wok)
			}
		}
	}
}

// TestPackedHashStaleSupplierFallsBack: a supplier whose vector length
// disagrees with the detail relation (a stale segment) must be ignored
// entirely — same results, zero packed conds counted.
func TestPackedHashStaleSupplierFallsBack(t *testing.T) {
	base, detail := packedCorpus()
	conds := packedConds()

	want, err := Evaluate(base, detail, conds, Options{})
	if err != nil {
		t.Fatal(err)
	}

	stale := relation.New(detail.Schema)
	for _, row := range detail.Rows[:detail.Len()/2] {
		stale.Append(row)
	}
	seg := storage.BuildSegment("R", stale)
	var stats Stats
	got, err := Evaluate(base, detail, conds, Options{
		Stats:      &stats,
		PackedHash: seg.KeyHashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PackedHashConds != 0 {
		t.Fatalf("PackedHashConds = %d, want 0 for a stale supplier", stats.PackedHashConds)
	}
	if want.Len() != got.Len() {
		t.Fatalf("fallback returned %d rows, want %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d: fallback %v, want %v", i, got.Rows[i], want.Rows[i])
		}
	}
}
