package gmdj

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// hoursFlow builds the paper's Figure 1 input tables.
func hoursFlow() (*relation.Relation, *relation.Relation) {
	hours := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "H", Name: "HourDsc", Type: value.KindInt},
		relation.Column{Qualifier: "H", Name: "StartInterval", Type: value.KindInt},
		relation.Column{Qualifier: "H", Name: "EndInterval", Type: value.KindInt},
	))
	hours.Append(relation.Tuple{value.Int(1), value.Int(0), value.Int(60)})
	hours.Append(relation.Tuple{value.Int(2), value.Int(61), value.Int(120)})
	hours.Append(relation.Tuple{value.Int(3), value.Int(121), value.Int(180)})

	flow := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "F", Name: "StartTime", Type: value.KindInt},
		relation.Column{Qualifier: "F", Name: "Protocol", Type: value.KindString},
		relation.Column{Qualifier: "F", Name: "NumBytes", Type: value.KindInt},
	))
	for _, r := range []struct {
		t int64
		p string
		n int64
	}{
		{43, "HTTP", 12}, {86, "HTTP", 36}, {99, "FTP", 48},
		{132, "HTTP", 24}, {156, "HTTP", 24}, {161, "FTP", 48},
	} {
		flow.Append(relation.Tuple{value.Int(r.t), value.Str(r.p), value.Int(r.n)})
	}
	return hours, flow
}

func timeWindow() expr.Expr {
	return expr.NewAnd(
		expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
		expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
	)
}

// TestPaperExample21 reproduces Figure 1 exactly: sum1/sum2 per hour
// must be 12/12, 36/84, 48/96.
func TestPaperExample21(t *testing.T) {
	hours, flow := hoursFlow()
	conds := []algebra.GMDJCond{
		{
			Theta: expr.NewAnd(timeWindow(), expr.Eq(expr.C("F.Protocol"), expr.StrLit("HTTP"))),
			Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "sum1"}},
		},
		{
			Theta: timeWindow(),
			Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "sum2"}},
		},
	}
	out, err := Evaluate(hours, flow, conds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
	want := map[int64][2]int64{1: {12, 12}, 2: {36, 84}, 3: {48, 96}}
	for _, row := range out.Rows {
		h := row[0].AsInt()
		w := want[h]
		if row[3].AsInt() != w[0] || row[4].AsInt() != w[1] {
			t.Errorf("hour %d: sum1/sum2 = %v/%v, want %d/%d", h, row[3], row[4], w[0], w[1])
		}
	}
}

// TestNoBindingFallback exercises the scan path: θ has only a range
// predicate, no equality, so no hash index can be built.
func TestNoBindingFallback(t *testing.T) {
	hours, flow := hoursFlow()
	var stats Stats
	conds := []algebra.GMDJCond{{
		Theta: timeWindow(),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}
	out, err := Evaluate(hours, flow, conds, Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FallbackConds != 1 {
		t.Errorf("FallbackConds = %d, want 1", stats.FallbackConds)
	}
	want := map[int64]int64{1: 1, 2: 2, 3: 3}
	for _, row := range out.Rows {
		if row[3].AsInt() != want[row[0].AsInt()] {
			t.Errorf("hour %v cnt = %v", row[0], row[3])
		}
	}
}

// TestEquiBindingUsesIndex checks that an equality correlation builds
// an index and probes rather than scanning.
func TestEquiBindingUsesIndex(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 100; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	for i := int64(0); i < 1000; i++ {
		detail.Append(relation.Tuple{value.Int(i % 100), value.Int(i)})
	}
	var stats Stats
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FallbackConds != 0 {
		t.Error("equality condition should not fall back")
	}
	// Each detail row probes exactly one bucket with one candidate.
	if stats.Probes > stats.DetailRows*2 {
		t.Errorf("probes = %d for %d detail rows — index not effective", stats.Probes, stats.DetailRows)
	}
	for _, row := range out.Rows {
		if row[1].AsInt() != 10 {
			t.Errorf("k=%v cnt = %v, want 10", row[0], row[1])
		}
	}
}

// TestNullKeysNeverMatch: SQL equality never matches NULL, on either
// side.
func TestNullKeysNeverMatch(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	base.Append(relation.Tuple{value.Int(1)})
	base.Append(relation.Tuple{value.Null})
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	detail.Append(relation.Tuple{value.Int(1)})
	detail.Append(relation.Tuple{value.Null})
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Rows {
		k, cnt := row[0], row[1].AsInt()
		if k.IsNull() && cnt != 0 {
			t.Errorf("NULL base key matched %d rows", cnt)
		}
		if !k.IsNull() && cnt != 1 {
			t.Errorf("k=1 matched %d rows, want 1 (NULL detail must not match)", cnt)
		}
	}
}

// TestEmptyDetailYieldsBaseWithEmptyAggregates: |X| = |B| always; sums
// over the empty range are NULL and counts are 0.
func TestEmptyDetailYieldsBaseWithEmptyAggregates(t *testing.T) {
	hours, flow := hoursFlow()
	flow.Rows = nil
	out, err := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: timeWindow(),
		Aggs: []agg.Spec{
			{Func: agg.CountStar, As: "cnt"},
			{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "s"},
		},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != hours.Len() {
		t.Fatalf("output size %d, want %d", out.Len(), hours.Len())
	}
	for _, row := range out.Rows {
		if row[3].AsInt() != 0 {
			t.Error("count over empty detail must be 0")
		}
		if !row[4].IsNull() {
			t.Error("sum over empty detail must be NULL")
		}
	}
}

func TestEmptyBase(t *testing.T) {
	hours, flow := hoursFlow()
	hours.Rows = nil
	out, err := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: timeWindow(),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("output size %d, want 0", out.Len())
	}
}

func TestMultipleBindingsCompositeKey(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "a", Type: value.KindInt},
		relation.Column{Qualifier: "B", Name: "b", Type: value.KindInt},
	))
	base.Append(relation.Tuple{value.Int(1), value.Int(2)})
	base.Append(relation.Tuple{value.Int(1), value.Int(3)})
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "a", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "b", Type: value.KindInt},
	))
	detail.Append(relation.Tuple{value.Int(1), value.Int(2)})
	detail.Append(relation.Tuple{value.Int(1), value.Int(3)})
	detail.Append(relation.Tuple{value.Int(1), value.Int(2)})
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.NewAnd(
			expr.Eq(expr.C("B.a"), expr.C("R.a")),
			expr.Eq(expr.C("B.b"), expr.C("R.b")),
		),
		Aggs: []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, row := range out.Rows {
		got[row[1].AsInt()] = row[2].AsInt()
	}
	if got[2] != 2 || got[3] != 1 {
		t.Errorf("composite key counts = %v", got)
	}
}

func TestBaseOnlyConjunctDisablesCondition(t *testing.T) {
	hours, flow := hoursFlow()
	// θ requires H.HourDsc = 2, so hours 1 and 3 must see no matches.
	out, err := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: expr.NewAnd(timeWindow(), expr.Eq(expr.C("H.HourDsc"), expr.IntLit(2))),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Rows {
		want := int64(0)
		if row[0].AsInt() == 2 {
			want = 2
		}
		if row[3].AsInt() != want {
			t.Errorf("hour %v cnt = %v, want %d", row[0], row[3], want)
		}
	}
}

func TestAmbiguousColumnError(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "X", Name: "k", Type: value.KindInt},
	))
	base.Append(relation.Tuple{value.Int(1)})
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "X", Name: "k", Type: value.KindInt},
	))
	detail.Append(relation.Tuple{value.Int(1)})
	_, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.NewCmp(value.GT, expr.C("X.k"), expr.IntLit(0)),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err == nil {
		t.Error("qualifier shared by base and detail must be rejected")
	}
}

// TestCompletionNotExists: σ[cnt = 0] plans retire base tuples on
// first match (Theorem 4.2).
func TestCompletionNotExists(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 10; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	// Keys 0..4 appear (many times); 5..9 never.
	for rep := 0; rep < 20; rep++ {
		for i := int64(0); i < 5; i++ {
			detail.Append(relation.Tuple{value.Int(i)})
		}
	}
	comp := &algebra.CompletionInfo{
		Atoms:      []algebra.CompletionAtom{{Cond: 0, Kind: algebra.AtomZero}},
		Tree:       algebra.Leaf(0),
		FreezeTrue: true,
	}
	var stats Stats
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{Completion: comp, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	// Tuples 0..4 decided False (dropped); 5..9 remain with cnt=0.
	if out.Len() != 5 {
		t.Fatalf("rows = %d, want 5", out.Len())
	}
	for _, row := range out.Rows {
		if row[0].AsInt() < 5 || row[1].AsInt() != 0 {
			t.Errorf("unexpected surviving row %v", row)
		}
	}
	if stats.Completed != 5 {
		t.Errorf("Completed = %d, want 5", stats.Completed)
	}
}

// TestCompletionExistsFreeze: σ[cnt > 0] with FreezeTrue emits frozen
// counts; the surviving rows still satisfy cnt > 0.
func TestCompletionExistsFreeze(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	base.Append(relation.Tuple{value.Int(1)})
	base.Append(relation.Tuple{value.Int(2)})
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < 50; i++ {
		detail.Append(relation.Tuple{value.Int(1)})
	}
	comp := &algebra.CompletionInfo{
		Atoms:      []algebra.CompletionAtom{{Cond: 0, Kind: algebra.AtomNonZero}},
		Tree:       algebra.Leaf(0),
		FreezeTrue: true,
	}
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{Completion: comp})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (True-frozen row kept, undecided row kept)", out.Len())
	}
	for _, row := range out.Rows {
		k, cnt := row[0].AsInt(), row[1].AsInt()
		if k == 1 && cnt < 1 {
			t.Errorf("frozen count = %d, want >= 1", cnt)
		}
		if k == 2 && cnt != 0 {
			t.Errorf("k=2 cnt = %d, want 0", cnt)
		}
	}
}

// TestCompletionComposite mirrors Example 4.2: cnt1=0 ∧ cnt2>0 ∧ cnt3=0.
func TestCompletionComposite(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 4; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "tag", Type: value.KindInt},
	))
	// k=0: tag1 only (fails cnt1=0) ; k=1: tag2 only (passes);
	// k=2: tag2+tag3 (fails cnt3=0) ; k=3: nothing (fails cnt2>0).
	add := func(k, tag int64) { detail.Append(relation.Tuple{value.Int(k), value.Int(tag)}) }
	add(0, 1)
	add(1, 2)
	add(2, 2)
	add(2, 3)
	cond := func(tag int64, name string) algebra.GMDJCond {
		return algebra.GMDJCond{
			Theta: expr.NewAnd(
				expr.Eq(expr.C("B.k"), expr.C("R.k")),
				expr.Eq(expr.C("R.tag"), expr.IntLit(tag)),
			),
			Aggs: []agg.Spec{{Func: agg.CountStar, As: name}},
		}
	}
	comp := &algebra.CompletionInfo{
		Atoms: []algebra.CompletionAtom{
			{Cond: 0, Kind: algebra.AtomZero},
			{Cond: 1, Kind: algebra.AtomNonZero},
			{Cond: 2, Kind: algebra.AtomZero},
		},
		Tree:       algebra.AndTree(algebra.Leaf(0), algebra.Leaf(1), algebra.Leaf(2)),
		FreezeTrue: false, // conjunction with ZERO atoms can never decide True early
	}
	out, err := Evaluate(base, detail, []algebra.GMDJCond{
		cond(1, "cnt1"), cond(2, "cnt2"), cond(3, "cnt3"),
	}, Options{Completion: comp})
	if err != nil {
		t.Fatal(err)
	}
	// k=0 and k=2 decided False and dropped; k=1 and k=3 remain
	// (k=3 undecided — the final σ rejects it downstream).
	got := map[int64][]int64{}
	for _, row := range out.Rows {
		got[row[0].AsInt()] = []int64{row[1].AsInt(), row[2].AsInt(), row[3].AsInt()}
	}
	if _, ok := got[0]; ok {
		t.Error("k=0 should have been completed (cnt1 matched)")
	}
	if _, ok := got[2]; ok {
		t.Error("k=2 should have been completed (cnt3 matched)")
	}
	if c, ok := got[1]; !ok || c[0] != 0 || c[1] != 1 || c[2] != 0 {
		t.Errorf("k=1 counts = %v", c)
	}
	if c, ok := got[3]; !ok || c[0] != 0 || c[1] != 0 || c[2] != 0 {
		t.Errorf("k=3 counts = %v", c)
	}
}

// TestParallelMatchesSerial is the core property: parallel evaluation
// must produce the same bag as serial, across random inputs.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nBase, nDetail := 1+rng.Intn(30), rng.Intn(500)
		base := relation.New(relation.NewSchema(
			relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
		))
		for i := 0; i < nBase; i++ {
			base.Append(relation.Tuple{value.Int(int64(rng.Intn(10)))})
		}
		detail := relation.New(relation.NewSchema(
			relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
			relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
		))
		for i := 0; i < nDetail; i++ {
			detail.Append(relation.Tuple{value.Int(int64(rng.Intn(10))), value.Int(int64(rng.Intn(100)))})
		}
		conds := []algebra.GMDJCond{
			{
				Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
				Aggs: []agg.Spec{
					{Func: agg.CountStar, As: "cnt"},
					{Func: agg.Sum, Arg: expr.C("R.v"), As: "s"},
					{Func: agg.Min, Arg: expr.C("R.v"), As: "mn"},
					{Func: agg.Max, Arg: expr.C("R.v"), As: "mx"},
					{Func: agg.Avg, Arg: expr.C("R.v"), As: "av"},
				},
			},
			{
				Theta: expr.NewCmp(value.LT, expr.C("B.k"), expr.C("R.k")),
				Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt2"}},
			},
		}
		serial, err := Evaluate(base, detail, conds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Evaluate(base, detail, conds, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if d := serial.Diff(par); d != "" {
			t.Fatalf("trial %d: parallel differs from serial: %s", trial, d)
		}
	}
}

// TestParallelCompletionDropsSameRows: completion decisions derived
// from merged flags equal serial decisions.
func TestParallelCompletionDropsSameRows(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 50; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 25; i++ {
		for j := 0; j < 5; j++ {
			detail.Append(relation.Tuple{value.Int(i)})
		}
	}
	comp := &algebra.CompletionInfo{
		Atoms: []algebra.CompletionAtom{{Cond: 0, Kind: algebra.AtomZero}},
		Tree:  algebra.Leaf(0),
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}
	serial, err := Evaluate(base, detail, conds, Options{Completion: comp})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(base, detail, conds, Options{Completion: comp, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != 25 || par.Len() != 25 {
		t.Fatalf("serial %d, parallel %d rows; want 25", serial.Len(), par.Len())
	}
	if d := serial.Diff(par); d != "" {
		t.Errorf("parallel completion differs: %s", d)
	}
}

func TestEvalTreeKleene(t *testing.T) {
	atoms := []algebra.CompletionAtom{
		{Cond: 0, Kind: algebra.AtomZero},
		{Cond: 1, Kind: algebra.AtomNonZero},
	}
	tree := algebra.OrTree(algebra.Leaf(1), algebra.NotTree(algebra.Leaf(0)))
	// Nothing matched: Unknown.
	if got := evalTree(tree, atoms, []bool{false, false}); got != value.Unknown {
		t.Errorf("unmatched = %v", got)
	}
	// Atom 1 matched (True): OR decides True.
	if got := evalTree(tree, atoms, []bool{false, true}); got != value.True {
		t.Errorf("nonzero matched = %v", got)
	}
	// Atom 0 matched (False), NOT makes it True: decides True.
	if got := evalTree(tree, atoms, []bool{true, false}); got != value.True {
		t.Errorf("zero matched via NOT = %v", got)
	}
	// AND of a matched ZERO atom decides False regardless of the rest.
	and := algebra.AndTree(algebra.Leaf(0), algebra.Leaf(1))
	if got := evalTree(and, atoms, []bool{true, false}); got != value.False {
		t.Errorf("AND with failed atom = %v", got)
	}
}

func TestStatsCounters(t *testing.T) {
	hours, flow := hoursFlow()
	var stats Stats
	_, err := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: timeWindow(),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DetailRows != 6 {
		t.Errorf("DetailRows = %d", stats.DetailRows)
	}
	if stats.Matches != 6 {
		t.Errorf("Matches = %d, want 6 (every flow falls in exactly one hour)", stats.Matches)
	}
	if stats.Probes != 18 {
		t.Errorf("Probes = %d, want 18 (fallback scans all 3 base rows per detail row)", stats.Probes)
	}
}

// TestOutputBoundedByBase: the property the paper stresses — output
// cardinality equals |B| regardless of |R| (without completion).
func TestOutputBoundedByBase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < 17; i++ {
		base.Append(relation.Tuple{value.Int(int64(rng.Intn(5)))}) // duplicates allowed
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < 1000; i++ {
		detail.Append(relation.Tuple{value.Int(int64(rng.Intn(5)))})
	}
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != base.Len() {
		t.Errorf("|X| = %d, want |B| = %d", out.Len(), base.Len())
	}
}

func TestDuplicateBaseTuplesEachGetOutput(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	base.Append(relation.Tuple{value.Int(1)})
	base.Append(relation.Tuple{value.Int(1)})
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	detail.Append(relation.Tuple{value.Int(1)})
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("duplicate base tuples must both appear, got %d rows", out.Len())
	}
	for _, row := range out.Rows {
		if row[1].AsInt() != 1 {
			t.Errorf("cnt = %v", row[1])
		}
	}
}

func TestBadCompletionAtomIndex(t *testing.T) {
	hours, flow := hoursFlow()
	comp := &algebra.CompletionInfo{
		Atoms: []algebra.CompletionAtom{{Cond: 5, Kind: algebra.AtomZero}},
		Tree:  algebra.Leaf(0),
	}
	_, err := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: timeWindow(),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{Completion: comp})
	if err == nil {
		t.Error("out-of-range completion atom must be rejected")
	}
}

func TestAggregateBindingErrors(t *testing.T) {
	hours, flow := hoursFlow()
	_, err := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: timeWindow(),
		// Aggregate over a base column violates Definition 2.1.
		Aggs: []agg.Spec{{Func: agg.Sum, Arg: expr.C("H.HourDsc"), As: "s"}},
	}}, Options{})
	if err == nil {
		t.Error("aggregate over base attribute must be rejected")
	}
}

func ExampleEvaluate() {
	hours, flow := hoursFlow()
	out, _ := Evaluate(hours, flow, []algebra.GMDJCond{{
		Theta: expr.NewAnd(
			expr.NewCmp(value.GE, expr.C("F.StartTime"), expr.C("H.StartInterval")),
			expr.NewCmp(value.LT, expr.C("F.StartTime"), expr.C("H.EndInterval")),
		),
		Aggs: []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "bytes"}},
	}}, Options{})
	for _, row := range out.Rows {
		fmt.Printf("hour %v: %v bytes\n", row[0], row[3])
	}
	// Output:
	// hour 1: 12 bytes
	// hour 2: 84 bytes
	// hour 3: 96 bytes
}
