package gmdj

import (
	"math/rand"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// TestPartitionedMatchesUnbounded: bounding the base-values structure
// must not change results, with or without completion.
func TestPartitionedMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < 137; i++ {
		base.Append(relation.Tuple{value.Int(int64(rng.Intn(20)))})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	for i := 0; i < 2000; i++ {
		detail.Append(relation.Tuple{value.Int(int64(rng.Intn(20))), value.Int(int64(rng.Intn(100)))})
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs: []agg.Spec{
			{Func: agg.CountStar, As: "cnt"},
			{Func: agg.Sum, Arg: expr.C("R.v"), As: "s"},
		},
	}}
	full, err := Evaluate(base, detail, conds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, 136, 137, 500} {
		part, err := Evaluate(base, detail, conds, Options{MaxBaseRows: chunk})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if d := full.Diff(part); d != "" {
			t.Errorf("chunk %d differs: %s", chunk, d)
		}
	}
}

func TestPartitionedWithCompletion(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 60; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 30; i++ {
		detail.Append(relation.Tuple{value.Int(i)})
	}
	comp := &algebra.CompletionInfo{
		Atoms: []algebra.CompletionAtom{{Cond: 0, Kind: algebra.AtomZero}},
		Tree:  algebra.Leaf(0),
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}
	full, err := Evaluate(base, detail, conds, Options{Completion: comp})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Evaluate(base, detail, conds, Options{Completion: comp, MaxBaseRows: 13})
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 30 || part.Len() != 30 {
		t.Fatalf("sizes: full %d, partitioned %d; want 30 survivors", full.Len(), part.Len())
	}
	if d := full.Diff(part); d != "" {
		t.Errorf("partitioned completion differs: %s", d)
	}
}

func TestPartitionedPreservesBaseOrder(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 25; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	out, err := Evaluate(base, detail, []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}, Options{MaxBaseRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range out.Rows {
		if row[0].AsInt() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}
}
