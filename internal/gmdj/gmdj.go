// Package gmdj implements the physical evaluation of the generalized
// multi-dimensional join operator MD(B, R, (l₁..lₘ), (θ₁..θₘ)) — the
// paper's core mechanism for subquery evaluation.
//
// Evaluation follows the hash-index strategy of Chatziantoniou et al.
// and Akinde & Böhlen: the base-values relation B is materialized in
// memory; each θᵢ is compiled by splitting its conjuncts into
//
//   - equi-bindings B.x = R.y, which key a hash index over B,
//   - base-only conjuncts, evaluated once per base tuple,
//   - detail-only conjuncts, evaluated once per detail tuple, and
//   - mixed residual conjuncts, evaluated per candidate pair;
//
// the detail relation R is then streamed exactly once, each detail
// tuple probing the index (or, when θᵢ has no equi-binding, scanning
// the active base entries) and folding into per-base aggregate
// accumulators. Intermediate state is bounded by |B| — the property
// the paper's cost argument rests on.
//
// The optional tuple-completion optimization (§4.2) drops a base tuple
// from the active set the moment the downstream selection's outcome is
// decided, which is what rescues the GMDJ on bindingless conditions
// such as Figure 4's ≠ correlation.
package gmdj

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/value"
)

// Stats reports work performed by one Evaluate call. All counters are
// cumulative across conditions.
type Stats struct {
	// DetailRows is the number of detail tuples scanned.
	DetailRows int64
	// Probes counts hash-index probes plus fallback base-entry visits.
	Probes int64
	// Matches counts (base, detail, θᵢ) triples that satisfied θᵢ.
	Matches int64
	// Completed counts base tuples retired early by tuple completion.
	Completed int64
	// ShortCircuitRows counts detail tuples skipped because tuple
	// completion decided every base tuple before the scan finished —
	// the strongest form of the §4.2 win.
	ShortCircuitRows int64
	// FallbackConds is the number of conditions lacking equi-bindings
	// (evaluated by scanning active base entries).
	FallbackConds int
	// Batches counts the detail-side morsel chunks fed through the
	// scan (relation.DefaultBatchCap rows each); parallel scans count
	// every worker's chunks. This is the batches= figure EXPLAIN
	// ANALYZE shows for GMDJ operators.
	Batches int64
	// WorkerRows records, for a parallel scan, how many detail rows
	// each worker fed (per-worker locals, recorded at drain time). Nil
	// for serial evaluation. Merge concatenates, so partitioned runs
	// list every scan's workers in order.
	WorkerRows []int64
	// HashCacheHits / HashCacheMisses count detail-side key-hash
	// partitions reused from (or computed and published to) the
	// cross-query hash cache (Options.HashCache). A hit saves one full
	// hashing pass over the detail relation per condition key set.
	HashCacheHits   int64
	HashCacheMisses int64
	// PackedHashConds counts condition key sets whose detail hash
	// vector was read from the packed columnar segment
	// (Options.PackedHash) instead of hashing row-oriented tuples.
	PackedHashConds int64
	// SpillPartitions counts base-state partitions evicted to the spill
	// store because the memory reservation could not hold the whole
	// base state; SpillBytesWritten/SpillBytesRead are their on-disk
	// frame traffic.
	SpillPartitions   int64
	SpillBytesWritten int64
	SpillBytesRead    int64
	// ExtraDetailScans counts full detail scans beyond the first: the
	// paper's one-scan guarantee relaxes to 1+k scans when k partitions
	// spill, and this reports k honestly.
	ExtraDetailScans int64
}

// Merge folds src into s. Counters add; WorkerRows concatenate. Safe
// only after the source evaluation has drained (gmdj merges per-worker
// locals at drain, never shares counters mid-scan).
func (s *Stats) Merge(src *Stats) {
	if s == nil || src == nil {
		return
	}
	s.DetailRows += src.DetailRows
	s.Probes += src.Probes
	s.Matches += src.Matches
	s.Completed += src.Completed
	s.ShortCircuitRows += src.ShortCircuitRows
	s.FallbackConds += src.FallbackConds
	s.Batches += src.Batches
	s.WorkerRows = append(s.WorkerRows, src.WorkerRows...)
	s.HashCacheHits += src.HashCacheHits
	s.HashCacheMisses += src.HashCacheMisses
	s.PackedHashConds += src.PackedHashConds
	s.SpillPartitions += src.SpillPartitions
	s.SpillBytesWritten += src.SpillBytesWritten
	s.SpillBytesRead += src.SpillBytesRead
	s.ExtraDetailScans += src.ExtraDetailScans
}

// Options tunes evaluation.
type Options struct {
	// Completion enables §4.2 tuple completion when non-nil.
	Completion *algebra.CompletionInfo
	// Workers > 1 partitions the base relation across goroutines, each
	// scanning the detail relation against its own base range; results
	// are byte-identical to serial evaluation at any degree. 0 and 1
	// mean serial.
	Workers int
	// MaxBaseRows bounds the in-memory base-values structure: when the
	// base exceeds it, evaluation proceeds in base partitions of this
	// size, scanning the detail relation once per partition — the
	// paper's "well-defined cost" memory-management regime for bases
	// that do not fit in memory. 0 means unbounded (single scan).
	MaxBaseRows int
	// Stats, when non-nil, receives evaluation counters.
	Stats *Stats
	// Gov, when non-nil, governs the scan: cooperative cancellation
	// ticks per detail row (shared across workers) and budget
	// accounting for the emitted output rows.
	Gov *govern.Governor
	// Faults injects deterministic failures at the gmdj.compile,
	// gmdj.worker, and gmdj.emit sites (nil = no injection).
	Faults *govern.Injector
	// Tracer, when non-nil, records one span per parallel worker
	// partition (Perfetto track per worker). Nil disables tracing.
	Tracer *obs.Tracer
	// Live, when non-nil, receives per-detail-row progress for the live
	// query dashboard. Shared by parallel workers (atomic counters), so
	// a long detail scan shows advancing numbers while it runs.
	Live *obs.LiveQuery
	// HashCache, together with a non-empty DetailID, lets the evaluator
	// reuse detail-side key-hash partitions across queries: the vector
	// of key hashes for (detail relation, key columns) is looked up
	// before being recomputed, and published after. The caller is
	// responsible for DetailID capturing the detail relation's identity
	// AND version, so a stale vector is unreachable by construction.
	HashCache HashCache
	// DetailID identifies the detail relation for HashCache keys
	// (e.g. "Flow#3@7"). Empty disables hash-partition caching.
	DetailID string
	// PackedHash, when non-nil, supplies detail-side key-hash vectors
	// straight from the detail table's packed columnar segment
	// (storage.Segment.KeyHashes): given the detail-schema positions of
	// a condition's key columns, it returns the per-row hash and
	// validity vectors, bit-identical to hashing the row-oriented
	// tuples. The caller must guarantee the vectors describe exactly
	// the rows of the detail relation passed to Evaluate (the executor
	// sets this only for bare table scans, the same gate as DetailID).
	PackedHash func(key []int) (h []uint64, ok []bool)
	// Mem, when non-nil, charges the estimated base-state footprint
	// (hash indexes, accumulators, completion flags) against the
	// query's memory reservation before building it. When the
	// reservation cannot supply the bytes, evaluation spills (Spill
	// non-nil) or fails with govern.ErrMemBudget (Spill nil).
	Mem *mem.Tracker
	// Spill, when non-nil, is the file-backed store used to evict base
	// partitions under memory pressure. Nil turns reservation
	// exhaustion into a hard govern.ErrMemBudget error — the pre-spill
	// "kill" regime.
	Spill *spill.Store
}

// HashCache is the minimal cache surface the evaluator needs for
// detail-hash reuse (satisfied by plancache.ResultCache). Values are
// immutable after Put.
type HashCache interface {
	Get(key string) (any, bool)
	Put(key string, v any, bytes int64)
}

// detailHashVec is the cached per-detail-row key-hash partition for
// one key-column set: H[i] is the FNV hash of row i's key columns and
// OK[i] is false where any key component is NULL (never matches).
type detailHashVec struct {
	H  []uint64
	OK []bool
}

// condProg is one compiled θᵢ with its aggregate list.
type condProg struct {
	baseKey    []int     // base-schema positions of equi-binding keys
	detailKey  []int     // detail-schema positions of equi-binding keys
	basePred   expr.Expr // bound to base schema; nil when absent
	detailPred expr.Expr // bound to detail schema; nil when absent
	mixedPred  expr.Expr // bound to base++detail; nil when absent
	fullTheta  expr.Expr // bound to base++detail; used by fallback conds
	specs      []agg.Spec
	aggOffset  int   // position of this cond's first aggregate column
	atoms      []int // completion atom indexes watching this condition

	index map[uint64][]int32 // base positions by key hash (nil ⇒ fallback)

	// detailHash, when non-nil, holds the (possibly cache-shared)
	// precomputed key hash per detail row, replacing per-row keyHash
	// calls in feed. Read-only once attached (shared across workers and
	// across queries).
	detailHash *detailHashVec
	// detailPredOK, when non-nil, caches the detail-only predicate
	// outcome per detail row. prepareParallel fills it before a
	// parallel run so workers share one evaluation pass instead of
	// each repeating it. Read-only once built.
	detailPredOK []bool
}

type program struct {
	base, detail *relation.Relation
	baseW        int
	conds        []condProg
	totalAggs    int
	comp         *algebra.CompletionInfo
	outSchema    *relation.Schema
	gov          *govern.Governor
	faults       *govern.Injector
	tracer       *obs.Tracer
	live         *obs.LiveQuery
	// packed mirrors Options.PackedHash: the detail table's columnar
	// key-hash supplier, consulted before any row-oriented hashing pass.
	packed func(key []int) (h []uint64, ok []bool)
}

// Evaluate computes the GMDJ of base and detail under conds.
// The output schema is base's columns followed by each condition's
// aggregate columns in order; output rows appear in base order (minus
// tuples dropped by completion).
func Evaluate(base, detail *relation.Relation, conds []algebra.GMDJCond, opts Options) (*relation.Relation, error) {
	if opts.MaxBaseRows > 0 && len(base.Rows) > opts.MaxBaseRows {
		return evaluatePartitioned(base, detail, conds, opts)
	}
	if err := opts.Faults.Fire("gmdj.compile", opts.Gov); err != nil {
		return nil, err
	}
	// Memory admission for the resident base state: charge the
	// estimated footprint before building it. A reservation that cannot
	// supply the bytes sends evaluation down the spill path — or, with
	// no spill store, fails with the typed memory-budget error (the
	// pre-spill "kill" regime).
	if opts.Mem != nil && len(base.Rows) > 0 {
		est := estimateStateBytes(base, conds, opts.Completion)
		if err := opts.Mem.Grow(est); err != nil {
			if opts.Spill == nil {
				return nil, &govern.BudgetError{Kind: govern.ErrMemBudget, Limit: opts.Mem.Available(), Observed: est}
			}
			return evaluateSpilled(base, detail, conds, opts, est)
		}
		defer opts.Mem.Shrink(est)
	}
	p, err := compile(base, detail, conds, opts.Completion)
	if err != nil {
		return nil, err
	}
	p.gov, p.faults, p.tracer, p.live = opts.Gov, opts.Faults, opts.Tracer, opts.Live
	p.packed = opts.PackedHash
	if opts.HashCache != nil && opts.DetailID != "" {
		p.attachDetailHashes(opts.HashCache, opts.DetailID, opts.Stats)
	} else if p.packed != nil {
		p.attachPackedHashes(opts.Stats)
	}
	if opts.Stats != nil {
		for _, c := range p.conds {
			if c.index == nil && len(c.baseKey) == 0 {
				opts.Stats.FallbackConds++
			}
		}
	}
	decided, accs, err := p.run(opts.Workers, opts.Stats)
	if err != nil {
		return nil, err
	}
	return p.emit(decided, accs)
}

// run executes the detail scan (serial or parallel) and returns the
// per-base decisions and accumulator rows, leaving materialization to
// emit — the split that lets the spill path evaluate partitions
// independently and still emit once, in base order.
func (p *program) run(workers int, stats *Stats) ([]int8, [][]agg.Accumulator, error) {
	if workers <= 0 {
		workers = 1
	}
	// Parallel evaluation shards the base, so it needs enough base rows
	// for every worker to own a real range, and enough detail rows for
	// the scan to be worth sharding at all.
	if workers > 1 && len(p.base.Rows) >= 2*workers && len(p.detail.Rows) >= 2*workers {
		if err := p.prepareParallel(stats); err != nil {
			return nil, nil, err
		}
		return p.runParallel(workers, stats)
	}
	return p.runSerial(stats)
}

// prepareParallel hoists the per-detail-row work every worker would
// otherwise repeat into shared read-only vectors: indexed conditions
// get their key-hash partition (when the cross-query cache hasn't
// already supplied one), and conditions with a detail-only predicate
// get its outcome bitmap. One O(detail) pass here replaces
// workers× passes inside the scan, leaving only the index probes
// themselves as duplicated work.
func (p *program) prepareParallel(stats *Stats) error {
	n := len(p.detail.Rows)
	for ci := range p.conds {
		cp := &p.conds[ci]
		if cp.index != nil && len(cp.detailKey) > 0 && cp.detailHash == nil {
			cp.detailHash = p.computeDetailVec(cp.detailKey, stats)
		}
		if cp.detailPred != nil && cp.detailPredOK == nil {
			oks := make([]bool, n)
			for di, row := range p.detail.Rows {
				tr, err := expr.EvalTri(cp.detailPred, row)
				if err != nil {
					return err
				}
				oks[di] = tr == value.True
			}
			cp.detailPredOK = oks
		}
	}
	return nil
}

// estimateStateBytes approximates the resident footprint of the GMDJ
// base state: per base row, the re-materialized tuple (spilled
// partitions decode rows from disk), hash-index entries per condition,
// accumulator structs, and completion flags. It is an estimate — what
// an admission decision needs — not an allocation count.
func estimateStateBytes(base *relation.Relation, conds []algebra.GMDJCond, comp *algebra.CompletionInfo) int64 {
	nBase := int64(len(base.Rows))
	if nBase == 0 {
		return 0
	}
	totalAggs := 0
	for _, c := range conds {
		totalAggs += len(c.Aggs)
	}
	per := int64(64)                  // accumulator-row slice header + flags
	per += int64(totalAggs) * 48      // accumulator structs
	per += int64(len(conds)) * 24     // index entries + fallback scan lists
	per += base.Rows[0].ApproxBytes() // representative row footprint
	if comp != nil {
		per += int64(len(comp.Atoms)) * 2 // matched flags
	}
	return nBase * per
}

// compile binds and classifies every condition.
func compile(base, detail *relation.Relation, conds []algebra.GMDJCond, comp *algebra.CompletionInfo) (*program, error) {
	combined := base.Schema.Concat(detail.Schema)
	p := &program{
		base:   base,
		detail: detail,
		baseW:  base.Schema.Len(),
		comp:   comp,
		conds:  make([]condProg, len(conds)),
	}
	outCols := append([]relation.Column{}, base.Schema.Columns...)
	for i, c := range conds {
		cp := &p.conds[i]
		cp.aggOffset = p.totalAggs
		for _, spec := range c.Aggs {
			bound, err := spec.Bind(detail.Schema)
			if err != nil {
				return nil, fmt.Errorf("gmdj: condition %d: %w", i, err)
			}
			cp.specs = append(cp.specs, bound)
			p.totalAggs++
		}
		outCols = append(outCols, agg.OutputSchema(c.Aggs, "R")...)
		if err := classifyTheta(cp, c.Theta, base.Schema, detail.Schema, combined); err != nil {
			return nil, fmt.Errorf("gmdj: condition %d (%s): %w", i, c.Theta, err)
		}
	}
	if comp != nil {
		for ai, a := range comp.Atoms {
			if a.Cond < 0 || a.Cond >= len(conds) {
				return nil, fmt.Errorf("gmdj: completion atom %d references condition %d of %d", ai, a.Cond, len(conds))
			}
			p.conds[a.Cond].atoms = append(p.conds[a.Cond].atoms, ai)
		}
	}
	p.outSchema = relation.NewSchema(outCols...)
	// Build hash indexes for conditions with bindings.
	for i := range p.conds {
		cp := &p.conds[i]
		if len(cp.baseKey) == 0 {
			continue
		}
		cp.index = make(map[uint64][]int32, len(base.Rows))
		for bi, row := range base.Rows {
			h, ok := keyHash(row, cp.baseKey)
			if !ok {
				continue // NULL key never matches through equality
			}
			cp.index[h] = append(cp.index[h], int32(bi))
		}
	}
	return p, nil
}

// attachDetailHashes resolves each indexed condition's detail-side
// key-hash partition against the cross-query cache: a hit replaces the
// per-row hashing feed would otherwise do; a miss computes the vector
// once here and publishes it. Conditions sharing a key-column set
// (coalesced subqueries probing the same binding, the common GMDJOpt
// shape) resolve to the same entry, so the second condition is free
// even on a cold cache.
func (p *program) attachDetailHashes(cache HashCache, detailID string, stats *Stats) {
	for i := range p.conds {
		cp := &p.conds[i]
		if cp.index == nil || len(cp.detailKey) == 0 {
			continue
		}
		keyCols := make([]string, len(cp.detailKey))
		for k, pos := range cp.detailKey {
			keyCols[k] = strconv.Itoa(pos)
		}
		key := "gmdjhash|" + detailID + "|k" + strings.Join(keyCols, ",")
		if v, ok := cache.Get(key); ok {
			if vec, ok := v.(*detailHashVec); ok && len(vec.H) == len(p.detail.Rows) {
				cp.detailHash = vec
				if stats != nil {
					stats.HashCacheHits++
				}
				continue
			}
		}
		vec := p.computeDetailVec(cp.detailKey, stats)
		cache.Put(key, vec, int64(len(vec.H))*9)
		cp.detailHash = vec
		if stats != nil {
			stats.HashCacheMisses++
		}
	}
}

// attachPackedHashes resolves indexed conditions' detail hash vectors
// from the packed columnar segment when no cross-query cache is
// configured. Only trusted vectors attach: a supplier whose vector
// length disagrees with the detail relation (a stale segment) is
// dropped entirely and evaluation falls back to row hashing.
func (p *program) attachPackedHashes(stats *Stats) {
	n := len(p.detail.Rows)
	for i := range p.conds {
		cp := &p.conds[i]
		if cp.index == nil || len(cp.detailKey) == 0 || cp.detailHash != nil {
			continue
		}
		h, ok := p.packed(cp.detailKey)
		if len(h) != n || len(ok) != n {
			p.packed = nil
			return
		}
		cp.detailHash = &detailHashVec{H: h, OK: ok}
		if stats != nil {
			stats.PackedHashConds++
		}
	}
}

// computeDetailVec builds the key-hash vector for one detail key set,
// reading the packed columnar segment when a trusted supplier is
// attached and falling back to hashing the row-oriented tuples.
func (p *program) computeDetailVec(key []int, stats *Stats) *detailHashVec {
	n := len(p.detail.Rows)
	if p.packed != nil {
		if h, ok := p.packed(key); len(h) == n && len(ok) == n {
			if stats != nil {
				stats.PackedHashConds++
			}
			return &detailHashVec{H: h, OK: ok}
		}
		p.packed = nil // stale supplier: never consult it again
	}
	vec := &detailHashVec{H: make([]uint64, n), OK: make([]bool, n)}
	for di, row := range p.detail.Rows {
		vec.H[di], vec.OK[di] = keyHash(row, key)
	}
	return vec
}

// classifyTheta splits θ's conjuncts into bindings and side-local
// predicates as described in the package comment.
func classifyTheta(cp *condProg, theta expr.Expr, baseS, detailS, combined *relation.Schema) error {
	resolves := func(c *expr.Col, s *relation.Schema) bool {
		_, err := s.Find(c.Qualifier, c.Name)
		return err == nil
	}
	side := func(e expr.Expr) (baseOnly, detailOnly bool, err error) {
		baseOnly, detailOnly = true, true
		for _, c := range expr.Cols(e) {
			inB, inD := resolves(c, baseS), resolves(c, detailS)
			if inB && inD {
				return false, false, fmt.Errorf("column %s is ambiguous between base and detail", c)
			}
			if !inB && !inD {
				return false, false, fmt.Errorf("column %s resolves in neither base nor detail", c)
			}
			if !inB {
				baseOnly = false
			}
			if !inD {
				detailOnly = false
			}
		}
		return baseOnly, detailOnly, nil
	}

	var basePreds, detailPreds, mixedPreds []expr.Expr
	for _, cj := range expr.Conjuncts(theta) {
		// Equi-binding detection: col = col across sides.
		if cmp, ok := cj.(*expr.Cmp); ok && cmp.Op == value.EQ {
			lc, lok := cmp.L.(*expr.Col)
			rc, rok := cmp.R.(*expr.Col)
			if lok && rok {
				lInB, lInD := resolves(lc, baseS), resolves(lc, detailS)
				rInB, rInD := resolves(rc, baseS), resolves(rc, detailS)
				if lInB && !lInD && rInD && !rInB {
					bi, _ := baseS.Find(lc.Qualifier, lc.Name)
					di, _ := detailS.Find(rc.Qualifier, rc.Name)
					cp.baseKey = append(cp.baseKey, bi)
					cp.detailKey = append(cp.detailKey, di)
					continue
				}
				if rInB && !rInD && lInD && !lInB {
					bi, _ := baseS.Find(rc.Qualifier, rc.Name)
					di, _ := detailS.Find(lc.Qualifier, lc.Name)
					cp.baseKey = append(cp.baseKey, bi)
					cp.detailKey = append(cp.detailKey, di)
					continue
				}
			}
		}
		bOnly, dOnly, err := side(cj)
		if err != nil {
			return err
		}
		switch {
		case bOnly && dOnly: // constant-only conjunct
			mixedPreds = append(mixedPreds, cj)
		case bOnly:
			basePreds = append(basePreds, cj)
		case dOnly:
			detailPreds = append(detailPreds, cj)
		default:
			mixedPreds = append(mixedPreds, cj)
		}
	}

	var err error
	if len(basePreds) > 0 {
		if cp.basePred, err = expr.Conj(basePreds).Bind(baseS); err != nil {
			return err
		}
	}
	if len(detailPreds) > 0 {
		if cp.detailPred, err = expr.Conj(detailPreds).Bind(detailS); err != nil {
			return err
		}
	}
	if len(mixedPreds) > 0 {
		if cp.mixedPred, err = expr.Conj(mixedPreds).Bind(combined); err != nil {
			return err
		}
	}
	if cp.fullTheta, err = theta.Bind(combined); err != nil {
		return err
	}
	return nil
}

// keyHash hashes the key columns of a row; ok is false when any key
// component is NULL.
func keyHash(row relation.Tuple, key []int) (uint64, bool) {
	var h uint64 = 14695981039346656037
	for _, pos := range key {
		v := row[pos]
		if v.IsNull() {
			return 0, false
		}
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h, true
}

func keysEqual(baseRow, detailRow relation.Tuple, baseKey, detailKey []int) bool {
	for k := range baseKey {
		if !value.Equal(baseRow[baseKey[k]], detailRow[detailKey[k]]) {
			return false
		}
	}
	return true
}

// state is the per-run mutable evaluation state. Serial evaluation
// uses one state spanning the whole base; parallel evaluation gives
// each worker a state owning a contiguous base range.
type state struct {
	p *program
	// lo, hi bound the base range this state owns. Arrays are
	// full-length and globally indexed — hash-index buckets hand out
	// global base positions, so global indexing keeps the probe path
	// offset-free — but only [lo,hi) is populated.
	lo, hi   int
	accs     [][]agg.Accumulator // [base][agg]
	active   []bool
	decided  []int8 // 0 undecided, +1 accept (frozen), -1 drop
	matched  [][]bool
	combined relation.Tuple
	// basePredOK[c][b] caches base-only conjunct outcomes.
	basePredOK [][]bool
	// condScan is, per condition, the fallback iteration list of base
	// positions (nil for indexed conditions). Conditions with a
	// base-only predicate list only the rows that pass it, so e.g. an
	// "x IS NULL" counterexample condition costs nothing on NULL-free
	// data. Lists are compacted lazily as completion retires entries.
	condScan [][]int32
	inactive int
	// remaining counts still-active base entries in [lo,hi); when
	// completion retires the last one the detail scan short-circuits
	// (no base tuple this state owns can change its output anymore).
	remaining int
	// liveFlushed tracks how many fed detail rows have been published
	// to the live-query registry; flushLive publishes per chunk, so
	// parallel workers don't contend on the shared atomic per row.
	liveFlushed int64
	stats       Stats
}

// flushLive publishes detail-row progress accumulated since the last
// flush to the live-query registry.
func (s *state) flushLive() {
	if d := s.stats.DetailRows - s.liveFlushed; d > 0 {
		s.p.live.AddDetail(d)
		s.liveFlushed = s.stats.DetailRows
	}
}

// newState builds evaluation state for the base range [lo,hi): the
// per-entry accumulator rows, completion flags, base-predicate cache,
// and fallback scan lists cover only the owned range, so a parallel
// run splits the O(base) construction cost across workers instead of
// repeating it.
func (p *program) newState(lo, hi int) (*state, error) {
	nBase := len(p.base.Rows)
	s := &state{
		p:         p,
		lo:        lo,
		hi:        hi,
		accs:      make([][]agg.Accumulator, nBase),
		active:    make([]bool, nBase),
		decided:   make([]int8, nBase),
		combined:  make(relation.Tuple, p.baseW+p.detail.Schema.Len()),
		remaining: hi - lo,
	}
	for bi := lo; bi < hi; bi++ {
		s.active[bi] = true
		row := make([]agg.Accumulator, 0, p.totalAggs)
		for ci := range p.conds {
			for _, spec := range p.conds[ci].specs {
				row = append(row, agg.NewAccumulator(spec))
			}
		}
		s.accs[bi] = row
	}
	if p.comp != nil {
		s.matched = make([][]bool, nBase)
		for bi := lo; bi < hi; bi++ {
			s.matched[bi] = make([]bool, len(p.comp.Atoms))
		}
	}
	s.basePredOK = make([][]bool, len(p.conds))
	for ci := range p.conds {
		cp := &p.conds[ci]
		if cp.basePred == nil {
			continue
		}
		oks := make([]bool, nBase)
		for bi := lo; bi < hi; bi++ {
			tr, err := expr.EvalTri(cp.basePred, p.base.Rows[bi])
			if err != nil {
				return nil, err
			}
			oks[bi] = tr == value.True
		}
		s.basePredOK[ci] = oks
	}
	s.condScan = make([][]int32, len(p.conds))
	for ci := range p.conds {
		if p.conds[ci].index != nil {
			continue
		}
		list := make([]int32, 0, hi-lo)
		oks := s.basePredOK[ci]
		for bi := lo; bi < hi; bi++ {
			if oks == nil || oks[bi] {
				list = append(list, int32(bi))
			}
		}
		s.condScan[ci] = list
	}
	return s, nil
}

// feed folds one detail row (at detail position di) into the state.
func (s *state) feed(di int) error {
	p := s.p
	detailRow := p.detail.Rows[di]
	copy(s.combined[p.baseW:], detailRow)
	s.stats.DetailRows++
	for ci := range p.conds {
		cp := &p.conds[ci]
		if cp.detailPred != nil {
			if cp.detailPredOK != nil {
				if !cp.detailPredOK[di] {
					continue
				}
			} else {
				tr, err := expr.EvalTri(cp.detailPred, detailRow)
				if err != nil {
					return err
				}
				if tr != value.True {
					continue
				}
			}
		}
		if cp.index != nil {
			var h uint64
			var ok bool
			if vec := cp.detailHash; vec != nil {
				h, ok = vec.H[di], vec.OK[di]
			} else {
				h, ok = keyHash(detailRow, cp.detailKey)
			}
			if !ok {
				continue
			}
			for _, bi := range cp.index[h] {
				s.stats.Probes++
				if !s.active[bi] {
					continue
				}
				baseRow := p.base.Rows[bi]
				if !keysEqual(baseRow, detailRow, cp.baseKey, cp.detailKey) {
					continue
				}
				if oks := s.basePredOK[ci]; oks != nil && !oks[bi] {
					continue
				}
				if cp.mixedPred != nil {
					copy(s.combined[:p.baseW], baseRow)
					tr, err := expr.EvalTri(cp.mixedPred, s.combined)
					if err != nil {
						return err
					}
					if tr != value.True {
						continue
					}
				}
				if err := s.match(int(bi), ci, detailRow); err != nil {
					return err
				}
			}
			continue
		}
		// Fallback: no equi-binding — visit every active base entry
		// that passes the condition's base-only predicate.
		for _, bi := range s.condScan[ci] {
			if !s.active[bi] {
				continue
			}
			s.stats.Probes++
			copy(s.combined[:p.baseW], p.base.Rows[bi])
			tr, err := expr.EvalTri(cp.fullTheta, s.combined)
			if err != nil {
				return err
			}
			if tr != value.True {
				continue
			}
			if err := s.match(int(bi), ci, detailRow); err != nil {
				return err
			}
		}
	}
	return nil
}

// match records that detailRow satisfied condition ci for base entry
// bi: aggregates are folded and completion is advanced.
func (s *state) match(bi, ci int, detailRow relation.Tuple) error {
	p := s.p
	cp := &p.conds[ci]
	s.stats.Matches++
	accRow := s.accs[bi]
	for k := range cp.specs {
		if err := accRow[cp.aggOffset+k].Add(detailRow); err != nil {
			return err
		}
	}
	if p.comp == nil || len(cp.atoms) == 0 {
		return nil
	}
	changed := false
	for _, ai := range cp.atoms {
		if !s.matched[bi][ai] {
			s.matched[bi][ai] = true
			changed = true
		}
	}
	if !changed {
		return nil
	}
	switch evalTree(p.comp.Tree, p.comp.Atoms, s.matched[bi]) {
	case value.False:
		s.retire(bi, -1)
	case value.True:
		if p.comp.FreezeTrue {
			s.retire(bi, 1)
		}
	}
	return nil
}

// retire removes a base entry from the active set.
func (s *state) retire(bi int, decision int8) {
	if !s.active[bi] {
		return
	}
	s.active[bi] = false
	s.decided[bi] = decision
	s.stats.Completed++
	s.inactive++
	s.remaining--
	if s.inactive*2 > s.hi-s.lo {
		for ci, list := range s.condScan {
			if list == nil {
				continue
			}
			kept := list[:0]
			for _, x := range list {
				if s.active[x] {
					kept = append(kept, x)
				}
			}
			s.condScan[ci] = kept
		}
		s.inactive = 0
	}
}

// evalTree Kleene-evaluates the completion formula: unmatched atoms are
// Unknown; a matched AtomZero is definitively False and a matched
// AtomNonZero definitively True (counts only grow).
func evalTree(t *algebra.BoolTree, atoms []algebra.CompletionAtom, matched []bool) value.Tri {
	if t == nil {
		return value.Unknown
	}
	switch t.Op {
	case algebra.BoolLeaf:
		if !matched[t.Leaf] {
			return value.Unknown
		}
		if atoms[t.Leaf].Kind == algebra.AtomZero {
			return value.False
		}
		return value.True
	case algebra.BoolAnd:
		acc := value.True
		for _, k := range t.Kids {
			acc = acc.And(evalTree(k, atoms, matched))
			if acc == value.False {
				return value.False
			}
		}
		return acc
	case algebra.BoolOr:
		acc := value.False
		for _, k := range t.Kids {
			acc = acc.Or(evalTree(k, atoms, matched))
			if acc == value.True {
				return value.True
			}
		}
		return acc
	case algebra.BoolNot:
		return evalTree(t.Kids[0], atoms, matched).Not()
	case algebra.BoolOpaque:
		return value.Unknown
	default:
		return value.Unknown
	}
}

// emit materializes the output relation from final state, charging
// each emitted row against the query budgets.
func (p *program) emit(decided []int8, accs [][]agg.Accumulator) (*relation.Relation, error) {
	if err := p.faults.Fire("gmdj.emit", p.gov); err != nil {
		return nil, err
	}
	out := relation.New(p.outSchema)
	for bi, baseRow := range p.base.Rows {
		if decided[bi] == -1 {
			continue
		}
		row := make(relation.Tuple, 0, p.baseW+p.totalAggs)
		row = append(row, baseRow...)
		for _, a := range accs[bi] {
			row = append(row, a.Result())
		}
		if p.gov != nil || p.live != nil {
			bytes := row.ApproxBytes()
			p.live.AddOut(1, bytes)
			if p.gov != nil {
				if err := p.gov.AccountAppend(1, bytes); err != nil {
					return nil, err
				}
			}
		}
		out.Append(row)
	}
	return out, nil
}

func (p *program) runSerial(stats *Stats) ([]int8, [][]agg.Accumulator, error) {
	s, err := p.newState(0, len(p.base.Rows))
	if err != nil {
		return nil, nil, err
	}
	// The detail scan proceeds in batch-sized chunks — the same morsel
	// discipline the rest of the engine runs on, and the unit the
	// batches= counter reports.
	n := len(p.detail.Rows)
	defer s.flushLive()
scan:
	for lo := 0; lo < n; lo += relation.DefaultBatchCap {
		hi := lo + relation.DefaultBatchCap
		if hi > n {
			hi = n
		}
		s.stats.Batches++
		for di := lo; di < hi; di++ {
			if s.remaining == 0 {
				// Every base tuple is decided: no remaining detail row can
				// change the output, so the scan short-circuits (§4.2 taken
				// to its limit).
				s.stats.ShortCircuitRows += int64(n - di)
				break scan
			}
			if err := p.gov.Tick(); err != nil {
				return nil, nil, err
			}
			if err := s.feed(di); err != nil {
				return nil, nil, err
			}
		}
		s.flushLive()
	}
	stats.Merge(&s.stats)
	return s.decided, s.accs, nil
}

// runParallel shards the BASE relation: each worker owns a contiguous
// range of base tuples, builds state for that range only, and scans
// the whole detail relation against it. Sharding the base rather than
// the detail wins three ways:
//
//   - The O(base) state construction (accumulator rows, base-predicate
//     cache, fallback scan lists) splits across workers instead of
//     being repeated per worker.
//   - Every base tuple's accumulators are fed by exactly one worker,
//     in detail order — the same fold order the serial scan uses — so
//     results are byte-identical to serial at any degree with no
//     cross-worker accumulator merge (order-sensitive aggregates
//     included). Completion decisions are likewise final per range.
//   - Tuple completion short-circuits per range: a worker whose
//     entries are all decided stops scanning immediately, so the
//     aggregate detail work tracks the serial scan's effective work,
//     not workers × detail.
//
// The price is that indexed conditions probe the shared hash index
// from every worker and discard hits outside the owned range (one
// active-flag load each); fallback θ-conditions pay nothing extra —
// each worker iterates only its own scan lists. Merging is pure
// concatenation of ranges in base order.
//
// Failure semantics: the first worker to fail (operator error, budget
// violation, cancellation, or recovered panic) records its error and
// trips a shared stop flag; every other worker observes the flag on
// its next detail row and returns without finishing its scan. The
// pool therefore drains within one row of the first failure, and
// Evaluate returns the first error in order of occurrence. Worker
// panics are recovered on the worker goroutine itself — the engine's
// panic boundary lives on the query goroutine and cannot shield
// workers — and surface as *govern.InternalError.
func (p *program) runParallel(workers int, stats *Stats) ([]int8, [][]agg.Accumulator, error) {
	if workers > runtime.GOMAXPROCS(0)*4 {
		workers = runtime.GOMAXPROCS(0) * 4
	}
	nBase := len(p.base.Rows)
	if workers > nBase {
		workers = nBase
	}
	if workers <= 1 {
		return p.runSerial(stats)
	}
	// Allocate every worker state before launching any goroutine, so an
	// allocation error cannot strand already-started workers.
	states := make([]*state, workers)
	for w := range states {
		st, err := p.newState(w*nBase/workers, (w+1)*nBase/workers)
		if err != nil {
			return nil, nil, err
		}
		states[w] = st
	}
	var (
		stop     atomic.Bool
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	var wg sync.WaitGroup
	n := len(p.detail.Rows)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, st *state) {
			start := time.Now()
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(&govern.InternalError{Panic: r, Node: "*algebra.GMDJ", Stack: debug.Stack()})
				}
			}()
			defer st.flushLive()
			defer func() {
				p.tracer.Span("gmdj", fmt.Sprintf("worker %d base [%d:%d)", w, st.lo, st.hi), int64(2+w), start, time.Since(start))
			}()
			if err := p.faults.Fire("gmdj.worker", p.gov); err != nil {
				fail(err)
				return
			}
			// Each worker walks the full detail scan in batch-sized
			// chunks, mirroring the serial scan's morsel discipline.
			for blo := 0; blo < n; blo += relation.DefaultBatchCap {
				bhi := blo + relation.DefaultBatchCap
				if bhi > n {
					bhi = n
				}
				st.stats.Batches++
				for di := blo; di < bhi; di++ {
					if stop.Load() {
						return
					}
					if st.remaining == 0 {
						// Range short-circuit: every base entry this worker
						// owns is decided, so the rest of the scan is dead
						// work for it.
						st.stats.ShortCircuitRows += int64(n - di)
						return
					}
					if err := p.gov.Tick(); err != nil {
						fail(err)
						return
					}
					if err := st.feed(di); err != nil {
						fail(err)
						return
					}
				}
				st.flushLive()
			}
		}(w, states[w])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	// Record per-worker row counts before merging collapses the locals.
	workerRows := make([]int64, workers)
	for w := range states {
		workerRows[w] = states[w].stats.DetailRows
	}
	// Each worker's range is disjoint and final: concatenate.
	root := states[0]
	for w := 1; w < workers; w++ {
		st := states[w]
		copy(root.accs[st.lo:st.hi], st.accs[st.lo:st.hi])
		copy(root.decided[st.lo:st.hi], st.decided[st.lo:st.hi])
		root.stats.Merge(&st.stats)
	}
	root.stats.WorkerRows = workerRows
	stats.Merge(&root.stats)
	return root.decided, root.accs, nil
}

// evaluatePartitioned processes the base relation in bounded chunks,
// scanning the detail relation once per chunk. Output order (base
// order) and completion semantics are preserved: every base tuple's
// aggregates and decisions depend only on its own matches.
func evaluatePartitioned(base, detail *relation.Relation, conds []algebra.GMDJCond, opts Options) (*relation.Relation, error) {
	chunkOpts := opts
	chunkOpts.MaxBaseRows = 0
	var out *relation.Relation
	for lo := 0; lo < len(base.Rows); lo += opts.MaxBaseRows {
		hi := lo + opts.MaxBaseRows
		if hi > len(base.Rows) {
			hi = len(base.Rows)
		}
		chunk := &relation.Relation{Schema: base.Schema, Rows: base.Rows[lo:hi]}
		res, err := Evaluate(chunk, detail, conds, chunkOpts)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = res
		} else {
			out.Rows = append(out.Rows, res.Rows...)
		}
	}
	if out == nil {
		out = relation.New(base.Schema)
	}
	return out, nil
}
