package gmdj

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// governData builds a base/detail pair sized so a parallel scan is in
// flight long enough for a concurrent cancel to land mid-partition.
func governData(nBase, nDetail int) (*relation.Relation, *relation.Relation) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < nBase; i++ {
		base.Append(relation.Tuple{value.Int(int64(i))})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < nDetail; i++ {
		detail.Append(relation.Tuple{value.Int(int64(i % (2 * nBase)))})
	}
	return base, detail
}

// nonEquiCond forces the per-detail full base scan (no equi binding),
// the slowest GMDJ path — maximizing the window in which cancellation
// must be observed.
func nonEquiCond() []algebra.GMDJCond {
	return []algebra.GMDJCond{{
		Theta: expr.NewCmp(value.LT, expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}
}

// TestParallelConcurrentCancellation races a 4-worker scan against
// cancellation arriving at varied offsets. Run under -race this also
// checks the pool's stop-flag/first-error synchronization. Either the
// scan wins (nil error) or the cancel wins (ErrCanceled); anything
// else — a hang, a leak, an unmapped context error — fails.
func TestParallelConcurrentCancellation(t *testing.T) {
	base, detail := governData(10, 30_000)
	conds := nonEquiCond()
	before := runtime.NumGoroutine()
	delays := []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond}
	for _, d := range delays {
		for trial := 0; trial < 2; trial++ {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func(d time.Duration) {
				defer close(done)
				time.Sleep(d)
				cancel()
			}(d)
			out, err := Evaluate(base, detail, conds, Options{
				Workers: 4,
				Gov:     govern.New(ctx, govern.Budget{}),
			})
			if err != nil && !errors.Is(err, govern.ErrCanceled) {
				t.Fatalf("delay %v: err = %v, want nil or ErrCanceled", d, err)
			}
			if err == nil && out.Len() != base.Len() {
				t.Fatalf("delay %v: completed scan returned %d rows, want %d", d, out.Len(), base.Len())
			}
			<-done
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelBudgetAbort: a row budget breached at emit time aborts a
// parallel evaluation with the typed budget error.
func TestParallelBudgetAbort(t *testing.T) {
	base, detail := governData(10, 1000)
	gov := govern.New(context.Background(), govern.Budget{MaxRows: 5})
	_, err := Evaluate(base, detail, nonEquiCond(), Options{Workers: 4, Gov: gov})
	if !errors.Is(err, govern.ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget", err)
	}
}

// TestParallelWorkerErrorStopsPool: an injected failure on one worker
// propagates as the evaluation's error and stops the remaining
// workers promptly (the pool drains within one row of the failure).
func TestParallelWorkerErrorStopsPool(t *testing.T) {
	base, detail := governData(10, 30_000)
	faults := govern.NewInjector(map[string]string{"gmdj.worker": "error"})
	start := time.Now()
	_, err := Evaluate(base, detail, nonEquiCond(), Options{Workers: 4, Faults: faults})
	if !errors.Is(err, govern.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("pool took %v to stop after worker error", el)
	}
}

// TestParallelWorkerPanicRecovered: a worker panic is recovered on the
// worker goroutine and converted to a typed internal error instead of
// crashing the process.
func TestParallelWorkerPanicRecovered(t *testing.T) {
	base, detail := governData(10, 1000)
	faults := govern.NewInjector(map[string]string{"gmdj.worker": "panic"})
	_, err := Evaluate(base, detail, nonEquiCond(), Options{Workers: 4, Faults: faults})
	if !errors.Is(err, govern.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *govern.InternalError
	if !errors.As(err, &ie) || len(ie.Stack) == 0 {
		t.Fatalf("err = %v, want *govern.InternalError with stack", err)
	}
}

// TestSerialCancellation: the serial scan honors the governor too.
func TestSerialCancellation(t *testing.T) {
	base, detail := governData(10, 30_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Evaluate(base, detail, nonEquiCond(), Options{
		Gov: govern.New(ctx, govern.Budget{}),
	})
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
