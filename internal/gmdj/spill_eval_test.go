package gmdj

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/govern"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/value"
)

// spillFixture builds a base/detail pair large enough that the
// estimated base state (~200 rows x ~200 bytes) overflows a small
// reservation and forces the spill regime.
func spillFixture() (*relation.Relation, *relation.Relation, []algebra.GMDJCond) {
	rng := rand.New(rand.NewSource(23))
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := 0; i < 200; i++ {
		base.Append(relation.Tuple{value.Int(int64(rng.Intn(40)))})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	for i := 0; i < 2000; i++ {
		detail.Append(relation.Tuple{value.Int(int64(rng.Intn(40))), value.Int(int64(rng.Intn(100)))})
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs: []agg.Spec{
			{Func: agg.CountStar, As: "cnt"},
			{Func: agg.Sum, Arg: expr.C("R.v"), As: "s"},
		},
	}}
	return base, detail, conds
}

// tinyTracker acquires a reservation from an 8 KiB pool — far below
// the fixture's state estimate — so Evaluate must spill.
func tinyTracker(t *testing.T) (*mem.Tracker, func()) {
	t.Helper()
	p := mem.NewPool(8<<10, time.Second)
	res, err := p.Acquire(context.Background(), mem.DefaultQueryReserve)
	if err != nil {
		t.Fatal(err)
	}
	return res.Tracker("gmdj"), res.Release
}

// TestSpillParity: with a reservation that forces >= 2 partitions to
// disk, the spilled evaluation must return byte-identical results to
// the unbounded in-memory run, serially and in parallel.
func TestSpillParity(t *testing.T) {
	base, detail, conds := spillFixture()
	full, err := Evaluate(base, detail, conds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		tr, release := tinyTracker(t)
		store, err := spill.NewStore(filepath.Join(t.TempDir(), "scratch"), nil)
		if err != nil {
			t.Fatal(err)
		}
		var stats Stats
		got, err := Evaluate(base, detail, conds, Options{
			Workers: workers, Mem: tr, Spill: store, Stats: &stats,
		})
		release()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := full.Diff(got); d != "" {
			t.Errorf("workers=%d: spilled result differs: %s", workers, d)
		}
		if stats.SpillPartitions < 2 {
			t.Errorf("workers=%d: SpillPartitions = %d, want >= 2", workers, stats.SpillPartitions)
		}
		if stats.SpillBytesWritten <= 0 || stats.SpillBytesRead <= 0 {
			t.Errorf("workers=%d: spill traffic = %d written / %d read, want > 0",
				workers, stats.SpillBytesWritten, stats.SpillBytesRead)
		}
		if stats.ExtraDetailScans < 1 {
			t.Errorf("workers=%d: ExtraDetailScans = %d, want >= 1", workers, stats.ExtraDetailScans)
		}
		if n := store.LiveFiles(); n != 0 {
			t.Errorf("workers=%d: %d spill files leaked", workers, n)
		}
	}
}

// TestSpillParityWithCompletion: tuple completion (the Theorem 3.1
// machinery) must survive the spill regime unchanged.
func TestSpillParityWithCompletion(t *testing.T) {
	base, detail, conds := spillFixture()
	comp := &algebra.CompletionInfo{
		Atoms: []algebra.CompletionAtom{{Cond: 0, Kind: algebra.AtomZero}},
		Tree:  algebra.Leaf(0),
	}
	full, err := Evaluate(base, detail, conds, Options{Completion: comp})
	if err != nil {
		t.Fatal(err)
	}
	tr, release := tinyTracker(t)
	defer release()
	store, err := spill.NewStore(filepath.Join(t.TempDir(), "scratch"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := Evaluate(base, detail, conds, Options{
		Completion: comp, Mem: tr, Spill: store, Stats: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := full.Diff(got); d != "" {
		t.Errorf("spilled completion result differs: %s", d)
	}
	if stats.SpillPartitions < 2 {
		t.Errorf("SpillPartitions = %d, want >= 2", stats.SpillPartitions)
	}
}

// TestSpillPreservesBaseOrder: output rows must appear in original
// base order even though partitions complete out of order.
func TestSpillPreservesBaseOrder(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 300; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}
	tr, release := tinyTracker(t)
	defer release()
	store, err := spill.NewStore(filepath.Join(t.TempDir(), "scratch"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	out, err := Evaluate(base, detail, conds, Options{Mem: tr, Spill: store, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpillPartitions < 1 {
		t.Fatalf("fixture did not spill (partitions = %d)", stats.SpillPartitions)
	}
	for i, row := range out.Rows {
		if row[0].AsInt() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}
}

// TestSpillKillRegime: memory pressure with no spill store must fail
// with the typed memory-budget error, not a panic or a silent OOM.
func TestSpillKillRegime(t *testing.T) {
	base, detail, conds := spillFixture()
	tr, release := tinyTracker(t)
	defer release()
	_, err := Evaluate(base, detail, conds, Options{Mem: tr})
	if !errors.Is(err, govern.ErrMemBudget) {
		t.Fatalf("err = %v, want ErrMemBudget", err)
	}
	var be *govern.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *govern.BudgetError", err)
	}
}

// TestSpillDiskFaults: injected disk faults during a spilled run must
// surface as typed spill I/O errors and leave no temp files behind.
func TestSpillDiskFaults(t *testing.T) {
	base, detail, conds := spillFixture()
	for _, spec := range []string{
		"spill.write=enospc",
		"spill.write=shortwrite",
		"spill.read=corrupt",
	} {
		t.Run(spec, func(t *testing.T) {
			in, err := govern.ParseFaults(spec)
			if err != nil {
				t.Fatal(err)
			}
			tr, release := tinyTracker(t)
			defer release()
			store, err := spill.NewStore(filepath.Join(t.TempDir(), "scratch"), in)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Evaluate(base, detail, conds, Options{Mem: tr, Spill: store})
			if !errors.Is(err, spill.ErrSpillIO) {
				t.Fatalf("err = %v, want ErrSpillIO", err)
			}
			if n := store.LiveFiles(); n != 0 {
				t.Errorf("%d spill files leaked after fault", n)
			}
			entries, err := os.ReadDir(store.Dir())
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				t.Errorf("leftover temp file %s", e.Name())
			}
		})
	}
}

// TestSpillCancellation: governor cancellation between partitions must
// abort the spilled run with the canceled error and clean up files.
func TestSpillCancellation(t *testing.T) {
	base, detail, conds := spillFixture()
	ctx, cancel := context.WithCancel(context.Background())
	gov := govern.New(ctx, govern.Budget{})
	tr, release := tinyTracker(t)
	defer release()
	store, err := spill.NewStore(filepath.Join(t.TempDir(), "scratch"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // cancel before evaluation: the first Gov.Check aborts
	_, err = Evaluate(base, detail, conds, Options{Gov: gov, Mem: tr, Spill: store})
	if !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := store.LiveFiles(); n != 0 {
		t.Errorf("%d spill files leaked after cancellation", n)
	}
}
