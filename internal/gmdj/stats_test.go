package gmdj

import (
	"math/rand"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// statsWorkload builds a completion-free workload: without completion
// no base tuple retires early, so the counters' relationship to the
// serial run is exact — matches split perfectly across base ranges,
// and every worker feeds the whole detail relation. (With completion
// the counters legitimately diverge — workers short-circuit at
// range-local points.)
func statsWorkload(detailRows int) (*relation.Relation, *relation.Relation, []algebra.GMDJCond) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 200; i++ {
		base.Append(relation.Tuple{value.Int(i % 50)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
		relation.Column{Qualifier: "R", Name: "v", Type: value.KindInt},
	))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < detailRows; i++ {
		detail.Append(relation.Tuple{value.Int(rng.Int63n(60)), value.Int(rng.Int63n(1000))})
	}
	conds := []algebra.GMDJCond{
		{
			Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
			Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
		},
		{
			// Bindingless condition exercises the fallback-scan counters.
			Theta: expr.NewCmp(value.LT, expr.C("B.k"), expr.C("R.v")),
			Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("R.v"), As: "s"}},
		},
	}
	return base, detail, conds
}

// TestStatsParitySerialParallel pins the base-sharded counter
// contract against serial evaluation (per-worker locals merged at
// drain — no lost or double-counted updates): matches and completions
// agree exactly (every (base, detail, θ) triple is evaluated by
// exactly one worker), detail rows multiply by the effective worker
// count (each worker runs the full detail scan), and probes land
// between the serial count (fallback visits split perfectly) and
// workers× it (shared-index buckets are walked by every worker). Run
// under -race this also proves the merge is race-free: workers write
// only their own state's counters, and WorkerRows is recorded after
// the pool drains.
func TestStatsParitySerialParallel(t *testing.T) {
	base, detail, conds := statsWorkload(8000)

	var serial Stats
	outS, err := Evaluate(base, detail, conds, Options{Stats: &serial})
	if err != nil {
		t.Fatal(err)
	}
	if serial.WorkerRows != nil {
		t.Fatalf("serial WorkerRows = %v, want nil", serial.WorkerRows)
	}

	for _, workers := range []int{2, 4, 8} {
		var par Stats
		// A live tracer makes the -race run cover concurrent span
		// recording from the worker goroutines too.
		outP, err := Evaluate(base, detail, conds, Options{
			Stats: &par, Workers: workers, Tracer: obs.NewTracer(1 << 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		if outP.String() != outS.String() {
			t.Fatalf("workers=%d: output differs from serial:\n%s", workers, outS.Diff(outP))
		}
		effective := int64(len(par.WorkerRows))
		if effective < 2 {
			t.Fatalf("workers=%d: WorkerRows = %v, want at least two workers", workers, par.WorkerRows)
		}
		if par.DetailRows != serial.DetailRows*effective {
			t.Fatalf("workers=%d: DetailRows = %d, want %d×%d (every worker scans the full detail)",
				workers, par.DetailRows, effective, serial.DetailRows)
		}
		if par.Matches != serial.Matches || par.Completed != serial.Completed ||
			par.ShortCircuitRows != serial.ShortCircuitRows {
			t.Fatalf("workers=%d: counters diverge:\nserial   %+v\nparallel %+v", workers, serial, par)
		}
		if par.Probes < serial.Probes || par.Probes > serial.Probes*effective {
			t.Fatalf("workers=%d: Probes = %d, want within [%d, %d]",
				workers, par.Probes, serial.Probes, serial.Probes*effective)
		}
		var sum int64
		for _, r := range par.WorkerRows {
			sum += r
		}
		if sum != par.DetailRows {
			t.Fatalf("workers=%d: sum(WorkerRows) = %d, DetailRows = %d", workers, sum, par.DetailRows)
		}
	}
}

// TestStatsMerge covers the Merge arithmetic, including WorkerRows
// concatenation and nil tolerance.
func TestStatsMerge(t *testing.T) {
	dst := Stats{DetailRows: 1, Probes: 2, Matches: 3, Completed: 4, ShortCircuitRows: 5, FallbackConds: 1, WorkerRows: []int64{7}}
	src := Stats{DetailRows: 10, Probes: 20, Matches: 30, Completed: 40, ShortCircuitRows: 50, FallbackConds: 2, WorkerRows: []int64{8, 9}}
	dst.Merge(&src)
	want := Stats{DetailRows: 11, Probes: 22, Matches: 33, Completed: 44, ShortCircuitRows: 55, FallbackConds: 3, WorkerRows: []int64{7, 8, 9}}
	if dst.DetailRows != want.DetailRows || dst.Probes != want.Probes || dst.Matches != want.Matches ||
		dst.Completed != want.Completed || dst.ShortCircuitRows != want.ShortCircuitRows ||
		dst.FallbackConds != want.FallbackConds || len(dst.WorkerRows) != 3 {
		t.Fatalf("Merge = %+v, want %+v", dst, want)
	}
	var nilStats *Stats
	nilStats.Merge(&src) // must not panic
	dst.Merge(nil)       // must not panic
}

// TestShortCircuitStopsScan verifies the strongest §4.2 outcome: when
// completion decides every base tuple, the remaining detail rows are
// skipped and accounted as ShortCircuitRows.
func TestShortCircuitStopsScan(t *testing.T) {
	base := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "B", Name: "k", Type: value.KindInt},
	))
	for i := int64(0); i < 10; i++ {
		base.Append(relation.Tuple{value.Int(i)})
	}
	detail := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "R", Name: "k", Type: value.KindInt},
	))
	// The first 10 rows match every base key once; the next 990 are
	// dead work once all base tuples are decided.
	for i := int64(0); i < 1000; i++ {
		detail.Append(relation.Tuple{value.Int(i % 10)})
	}
	conds := []algebra.GMDJCond{{
		Theta: expr.Eq(expr.C("B.k"), expr.C("R.k")),
		Aggs:  []agg.Spec{{Func: agg.CountStar, As: "cnt"}},
	}}
	comp := &algebra.CompletionInfo{
		// NOT EXISTS shape: one match decides the base tuple (dropped).
		Atoms: []algebra.CompletionAtom{{Cond: 0, Kind: algebra.AtomZero}},
		Tree:  &algebra.BoolTree{Op: algebra.BoolLeaf, Leaf: 0},
	}
	var stats Stats
	out, err := Evaluate(base, detail, conds, Options{Completion: comp, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("rows = %d, want 0 (every base tuple dropped)", out.Len())
	}
	if stats.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", stats.Completed)
	}
	if stats.ShortCircuitRows == 0 {
		t.Fatal("ShortCircuitRows = 0, want > 0 (scan must stop early)")
	}
	if stats.DetailRows+stats.ShortCircuitRows != 1000 {
		t.Fatalf("DetailRows(%d) + ShortCircuitRows(%d) != 1000", stats.DetailRows, stats.ShortCircuitRows)
	}
	// Serial evaluation stops at exactly the deciding row.
	if stats.DetailRows != 10 {
		t.Fatalf("DetailRows = %d, want 10", stats.DetailRows)
	}
}
