package rewrite

import (
	"math/rand"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/exec"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/value"
)

// TestThreeLevelLinearNesting exercises Theorem 3.2 at depth 3 with
// neighboring correlations only: users for whom there exists an hour
// in which there exists an FTP flow from their IP... expressed so each
// block references only its immediate parent.
func TestThreeLevelLinearNesting(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(31)), 400)
	// level 3: flows within H's window (neighboring: refs H only)
	inner := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			timeWindow("F", "H"),
			expr.Eq(expr.C("F.Protocol"), expr.StrLit("FTP")),
		)},
	}
	// level 2: hours with FTP traffic whose description exceeds SOME
	// flow count... keep it simple: hours with FTP traffic (refs U? no
	// — neighboring chain needs level-2 to correlate to U).
	mid := &algebra.Subquery{
		Source: algebra.NewScan("Hours", "H"),
		Where: algebra.And(
			&algebra.Atom{E: expr.NewCmp(value.GT, expr.C("H.HourDsc"), expr.IntLit(0))},
			algebra.ExistsPred(inner),
		),
	}
	plan := algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.ExistsPred(mid))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestThreeLevelNonNeighboring: depth-3 chain where the innermost
// block references the outermost table — requires push-down through
// two levels (n−1 = 2 joins).
func TestThreeLevelNonNeighboring(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(32)), 300)
	inner := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			timeWindow("F", "H"),
			expr.Eq(expr.C("F.SourceIP"), expr.C("U.IPAddress")), // refs level 1!
		)},
	}
	mid := &algebra.Subquery{
		Source: algebra.NewScan("Hours", "H"),
		Where:  algebra.And(algebra.NotExistsPred(inner)),
	}
	plan := algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.NotExistsPred(mid))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestSubqueryOverFilteredSource: the subquery's FROM is itself a
// filtered plan, not a bare scan.
func TestSubqueryOverFilteredSource(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(33)), 300)
	sub := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Flow", "FI"),
			expr.NewCmp(value.GT, expr.C("FI.NumBytes"), expr.IntLit(50))),
		Where: &algebra.Atom{E: timeWindow("FI", "H")},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.ExistsPred(sub))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestSubqueryWhereTrue: a completely uncorrelated EXISTS (constant
// subquery) — b is kept iff the inner table is non-empty.
func TestSubqueryWhereTrue(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(34)), 10)
	sub := &algebra.Subquery{Source: algebra.NewScan("Flow", "FI")}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.ExistsPred(sub))
	out := runBoth(t, cat, plan, false)
	if out.Len() != 4 {
		t.Errorf("non-empty inner keeps all hours, got %d", out.Len())
	}
	// Empty inner drops everything.
	catEmpty := netflowCatalog(rand.New(rand.NewSource(35)), 0)
	out2 := runBoth(t, catEmpty, plan, true)
	if out2.Len() != 0 {
		t.Errorf("empty inner must drop all hours, got %d", out2.Len())
	}
}

// TestMixedAtomAndSubqueryConjunction: plain atoms interleaved with
// subquery predicates survive the rewrite (W grammar generality).
func TestMixedAtomAndSubqueryConjunction(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(36)), 250)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.And(
			&algebra.Atom{E: expr.NewCmp(value.GE, expr.C("H.HourDsc"), expr.IntLit(2))},
			algebra.ExistsPred(existsSub("167.167.167.0")),
			&algebra.Atom{E: expr.NewCmp(value.LE, expr.C("H.HourDsc"), expr.IntLit(3))},
		))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestAggregateSubqueryWithSumAndMin exercises non-count aggregates
// through the Table 1 aggregate row.
func TestAggregateSubqueryWithSumAndMin(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(37)), 300)
	for _, fn := range []agg.Func{agg.Sum, agg.Min, agg.Max, agg.Count} {
		sub := &algebra.Subquery{
			Source: algebra.NewScan("Flow", "FI"),
			Where:  &algebra.Atom{E: timeWindow("FI", "H")},
			Agg:    &agg.Spec{Func: fn, Arg: expr.C("FI.NumBytes")},
		}
		plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
			&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.LT, Left: expr.IntLit(40), Sub: sub})
		for _, opt := range []bool{false, true} {
			runBoth(t, cat, plan, opt)
		}
	}
}

// TestCompletionSoundnessUnderRandomPredicates fuzzes the completion
// detector: whatever it attaches must never change results.
func TestCompletionSoundnessUnderRandomPredicates(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		cat := netflowCatalog(rng, 150)
		plan := randomPlan(rng)
		e := exec.New(cat)
		basic, err := SubqueryToGMDJ(plan, e)
		if err != nil {
			t.Fatal(err)
		}
		optimized, err := Optimize(basic, e)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Run(basic)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(optimized)
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Diff(b); d != "" {
			t.Fatalf("trial %d: Optimize changed results: %s\nbasic: %s\noptimized: %s",
				trial, d, basic, optimized)
		}
	}
}
