package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/exec"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// netflowCatalog builds the paper's running-example schema: Flow,
// Hours, User.
func netflowCatalog(rng *rand.Rand, nFlows int) *storage.Catalog {
	cat := storage.NewCatalog()

	ips := []string{
		"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4",
		"167.167.167.0", "168.168.168.0", "169.169.169.0",
	}
	protos := []string{"HTTP", "FTP", "SMTP"}
	flow := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Flow", Name: "SourceIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "DestIP", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "StartTime", Type: value.KindInt},
		relation.Column{Qualifier: "Flow", Name: "Protocol", Type: value.KindString},
		relation.Column{Qualifier: "Flow", Name: "NumBytes", Type: value.KindInt},
	))
	for i := 0; i < nFlows; i++ {
		flow.Append(relation.Tuple{
			value.Str(ips[rng.Intn(len(ips))]),
			value.Str(ips[rng.Intn(len(ips))]),
			value.Int(int64(rng.Intn(240))),
			value.Str(protos[rng.Intn(len(protos))]),
			value.Int(int64(1 + rng.Intn(100))),
		})
	}
	cat.Register(storage.NewTable("Flow", flow))

	hours := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "Hours", Name: "HourDsc", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "StartInterval", Type: value.KindInt},
		relation.Column{Qualifier: "Hours", Name: "EndInterval", Type: value.KindInt},
	))
	for h := int64(0); h < 4; h++ {
		hours.Append(relation.Tuple{value.Int(h + 1), value.Int(h * 60), value.Int((h + 1) * 60)})
	}
	cat.Register(storage.NewTable("Hours", hours))

	user := relation.New(relation.NewSchema(
		relation.Column{Qualifier: "User", Name: "Name", Type: value.KindString},
		relation.Column{Qualifier: "User", Name: "IPAddress", Type: value.KindString},
	))
	for i, ip := range ips[:4] {
		user.Append(relation.Tuple{value.Str("user" + string(rune('a'+i))), value.Str(ip)})
	}
	cat.Register(storage.NewTable("User", user))

	return cat
}

// timeWindow builds the H/F correlation used throughout the paper.
func timeWindow(f, h string) expr.Expr {
	return expr.NewAnd(
		expr.NewCmp(value.GE, expr.C(f+".StartTime"), expr.C(h+".StartInterval")),
		expr.NewCmp(value.LT, expr.C(f+".StartTime"), expr.C(h+".EndInterval")),
	)
}

// runBoth executes the plan natively (tuple iteration) and through
// SubqueryToGMDJ (optionally optimized) and requires identical bags.
func runBoth(t *testing.T, cat *storage.Catalog, plan algebra.Node, optimize bool) *relation.Relation {
	t.Helper()
	e := exec.New(cat)

	native, err := e.Run(plan)
	if err != nil {
		t.Fatalf("native run: %v", err)
	}

	opts := Options{}
	if optimize {
		opts.AllCounterexample = true
	}
	rewritten, err := SubqueryToGMDJOpts(plan, e, opts)
	if err != nil {
		t.Fatalf("SubqueryToGMDJ: %v", err)
	}
	if optimize {
		rewritten, err = Optimize(rewritten, e)
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
	}
	gmdjOut, err := e.Run(rewritten)
	if err != nil {
		t.Fatalf("gmdj run of %s: %v", rewritten, err)
	}
	if d := native.Diff(gmdjOut); d != "" {
		t.Fatalf("GMDJ result differs from native (optimize=%v): %s\nplan: %s\nrewritten: %s",
			optimize, d, plan, rewritten)
	}
	return native
}

// existsSub builds Example 2.2's subquery: flows to dest within H's
// window.
func existsSub(dest string) *algebra.Subquery {
	return &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where: &algebra.Atom{E: expr.NewAnd(
			expr.Eq(expr.C("FI.DestIP"), expr.StrLit(dest)),
			timeWindow("FI", "H"),
		)},
	}
}

func TestTable1Exists(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(1)), 200)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.ExistsPred(existsSub("167.167.167.0")))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

func TestTable1NotExists(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(2)), 200)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.NotExistsPred(existsSub("169.169.169.0")))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

func TestTable1Some(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(3)), 150)
	// Hours whose description equals SOME flow hour-bucket (contrived
	// but exercises =_some with correlation-free inner).
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.LT, expr.C("FI.NumBytes"), expr.IntLit(30))},
		OutCol: expr.C("FI.StartTime"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.CmpSome, Op: value.GT, Left: expr.C("H.EndInterval"), Sub: sub})
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

func TestTable1All(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(4)), 100)
	// Hours that start after ALL cheap flows.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where:  &algebra.Atom{E: expr.NewCmp(value.LT, expr.C("FI.NumBytes"), expr.IntLit(10))},
		OutCol: expr.C("FI.StartTime"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.GT, Left: expr.C("H.StartInterval"), Sub: sub})
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

func TestTable1AllEmptyInnerKeepsEverything(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(5)), 50)
	sub := &algebra.Subquery{
		Source: algebra.Filter(algebra.NewScan("Flow", "FI"), expr.BoolLit(false)),
		OutCol: expr.C("FI.StartTime"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.CmpAll, Op: value.LT, Left: expr.C("H.StartInterval"), Sub: sub})
	out := runBoth(t, cat, plan, false)
	if out.Len() != 4 {
		t.Errorf("ALL over empty inner must keep all 4 hours, got %d", out.Len())
	}
	runBoth(t, cat, plan, true)
}

func TestTable1ScalarAggregate(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(6)), 150)
	// Hours whose interval start exceeds the average start time of
	// flows in that hour window (correlated aggregate).
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "FI"),
		Where:  &algebra.Atom{E: timeWindow("FI", "H")},
		Agg:    &agg.Spec{Func: agg.Avg, Arg: expr.C("FI.NumBytes"), As: "a"},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.LT, Left: expr.IntLit(40), Sub: sub})
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

func TestTable1ScalarColumnUniqueInner(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(7)), 0)
	// Inner yields exactly one row per outer: Hours self-lookup by key.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Hours", "H2"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("H2.HourDsc"), expr.C("H.HourDsc"))},
		OutCol: expr.C("H2.StartInterval"),
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		&algebra.SubPred{Kind: algebra.ScalarCmp, Op: value.GE, Left: expr.C("H.StartInterval"), Sub: sub})
	out := runBoth(t, cat, plan, false)
	if out.Len() != 4 {
		t.Errorf("self-lookup must keep all hours, got %d", out.Len())
	}
}

// TestPaperExample22 is the full Example 2.2/3.1 query: web-traffic
// fraction per hour, restricted to hours with traffic to a target IP.
func TestPaperExample22(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(8)), 300)
	b := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.ExistsPred(existsSub("167.167.167.0")))
	plan := algebra.NewGMDJ(b, algebra.NewScan("Flow", "FO"),
		algebra.GMDJCond{
			Theta: expr.NewAnd(timeWindow("FO", "H"), expr.Eq(expr.C("FO.Protocol"), expr.StrLit("HTTP"))),
			Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("FO.NumBytes"), As: "sum1"}},
		},
		algebra.GMDJCond{
			Theta: timeWindow("FO", "H"),
			Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("FO.NumBytes"), As: "sum2"}},
		},
	)
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// paperExample23Plan builds Example 2.3/3.2: source IPs with no flows
// to dest1, some flow to dest2, and no flows to dest3, extended with
// to/from byte totals.
func paperExample23Plan() algebra.Node {
	subTo := func(alias, dest string) *algebra.Subquery {
		return &algebra.Subquery{
			Source: algebra.NewScan("Flow", alias),
			Where: &algebra.Atom{E: expr.NewAnd(
				expr.Eq(expr.C("F0.SourceIP"), expr.C(alias+".SourceIP")),
				expr.Eq(expr.C(alias+".DestIP"), expr.StrLit(dest)),
			)},
		}
	}
	b := algebra.NewRestrict(
		algebra.ProjectCols(algebra.NewScan("Flow", "F0"), true, "F0.SourceIP"),
		algebra.And(
			algebra.NotExistsPred(subTo("F1", "167.167.167.0")),
			algebra.ExistsPred(subTo("F2", "168.168.168.0")),
			algebra.NotExistsPred(subTo("F3", "169.169.169.0")),
		))
	return algebra.NewProject(
		algebra.NewGMDJ(b, algebra.NewScan("Flow", "F"),
			algebra.GMDJCond{
				Theta: expr.Eq(expr.C("F0.SourceIP"), expr.C("F.SourceIP")),
				Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "sumTo"}},
			},
			algebra.GMDJCond{
				Theta: expr.Eq(expr.C("F0.SourceIP"), expr.C("F.DestIP")),
				Aggs:  []agg.Spec{{Func: agg.Sum, Arg: expr.C("F.NumBytes"), As: "sumFrom"}},
			},
		),
		false,
		algebra.ProjItem{E: expr.C("F0.SourceIP")},
		algebra.ProjItem{E: expr.C("sumTo")},
		algebra.ProjItem{E: expr.C("sumFrom")},
	)
}

func TestPaperExample23(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(9)), 400)
	plan := paperExample23Plan()
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestCoalesceExample41 verifies Proposition 4.1: the optimized plan
// for Example 2.3 contains exactly one GMDJ (five conditions, one scan
// of Flow) below the selection.
func TestCoalesceExample41(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(10)), 100)
	e := exec.New(cat)
	plan := paperExample23Plan()
	rewritten, err := SubqueryToGMDJ(plan, e)
	if err != nil {
		t.Fatal(err)
	}
	if got := countGMDJs(rewritten); got != 4 {
		t.Fatalf("basic rewrite should have 4 GMDJs (3 subqueries + outer), got %d:\n%s", got, rewritten)
	}
	optimized, err := Optimize(rewritten, e)
	if err != nil {
		t.Fatal(err)
	}
	if got := countGMDJs(optimized); got != 1 {
		t.Fatalf("coalesced plan should have exactly 1 GMDJ, got %d:\n%s", got, optimized)
	}
	var g *algebra.GMDJ
	walkNodes(optimized, func(n algebra.Node) {
		if x, ok := n.(*algebra.GMDJ); ok {
			g = x
		}
	})
	if len(g.Conds) != 5 {
		t.Errorf("merged GMDJ has %d conditions, want 5", len(g.Conds))
	}
	if g.Completion == nil {
		t.Error("merged GMDJ should carry completion info (Example 4.2)")
	} else if g.Completion.FreezeTrue {
		t.Error("FreezeTrue must be off: sumTo/sumFrom are consumed downstream")
	}
	// And of course it must still be correct.
	a, err := e.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("optimized plan wrong: %s", d)
	}
}

// TestPaperExample33 is the non-neighboring query: users active in
// every hour (double existential negation), where the innermost
// predicate references the outermost table.
func TestPaperExample33(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(11)), 500)
	inner := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			timeWindow("F", "H"),
			expr.Eq(expr.C("F.SourceIP"), expr.C("U.IPAddress")), // non-neighboring!
		)},
	}
	outer := &algebra.Subquery{
		Source: algebra.NewScan("Hours", "H"),
		Where: algebra.And(
			&algebra.Atom{E: expr.NewCmp(value.GT, expr.C("H.StartInterval"), expr.IntLit(-1))},
			algebra.NotExistsPred(inner),
		),
	}
	plan := algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.NotExistsPred(outer))
	for _, opt := range []bool{false, true} {
		got := runBoth(t, cat, plan, opt)
		// Sanity: with 500 random flows some users are active in all 4
		// hours; verify against a hand computation.
		e := exec.New(cat)
		flows, _ := e.Run(algebra.NewScan("Flow", "F"))
		users, _ := e.Run(algebra.NewScan("User", "U"))
		want := 0
		for _, u := range users.Rows {
			ip := u[1].AsString()
			active := map[int64]bool{}
			for _, f := range flows.Rows {
				if f[0].AsString() == ip {
					active[f[2].AsInt()/60] = true
				}
			}
			all := true
			for h := int64(0); h < 4; h++ {
				if !active[h] {
					all = false
				}
			}
			if all {
				want++
			}
		}
		if got.Len() != want {
			t.Errorf("active users = %d, want %d", got.Len(), want)
		}
	}
}

// TestExample33IntroducesOneJoin: the paper proves non-neighboring
// push-down costs exactly depth−1 joins; here depth is 2, so one join.
func TestExample33IntroducesOneJoin(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(12)), 50)
	e := exec.New(cat)
	inner := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where: &algebra.Atom{E: expr.NewAnd(
			timeWindow("F", "H"),
			expr.Eq(expr.C("F.SourceIP"), expr.C("U.IPAddress")),
		)},
	}
	outer := &algebra.Subquery{
		Source: algebra.NewScan("Hours", "H"),
		Where:  algebra.And(algebra.NotExistsPred(inner)),
	}
	plan := algebra.NewRestrict(algebra.NewScan("User", "U"), algebra.NotExistsPred(outer))
	rewritten, err := SubqueryToGMDJ(plan, e)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	walkNodes(rewritten, func(n algebra.Node) {
		if _, ok := n.(*algebra.Join); ok {
			joins++
		}
	})
	if joins != 1 {
		t.Errorf("rewritten plan has %d joins, want exactly 1:\n%s", joins, rewritten)
	}
}

// TestNegationElimination: ¬EXISTS under OR is handled by the
// integrated algorithm's normalization.
func TestNegationElimination(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(13)), 200)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.Not(algebra.Or(
			algebra.ExistsPred(existsSub("167.167.167.0")),
			algebra.ExistsPred(existsSub("168.168.168.0")),
		)))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestDisjunctiveSubqueries: subquery predicates under OR (the W
// grammar of Theorem 3.5 allows arbitrary boolean structure).
func TestDisjunctiveSubqueries(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(14)), 200)
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"),
		algebra.Or(
			algebra.ExistsPred(existsSub("169.169.169.0")),
			algebra.And(
				&algebra.Atom{E: expr.Eq(expr.C("H.HourDsc"), expr.IntLit(1))},
				algebra.NotExistsPred(existsSub("10.0.0.1")),
			),
		))
	for _, opt := range []bool{false, true} {
		runBoth(t, cat, plan, opt)
	}
}

// TestNotInNullTrap: the NOT IN + NULL semantics must survive the
// rewrite (the count-based ALL translation counts only True matches,
// which is exactly SQL's behaviour under truncation).
func TestNotInNullTrap(t *testing.T) {
	cat := storage.NewCatalog()
	mk := func(name string, vals ...value.Value) {
		r := relation.New(relation.NewSchema(
			relation.Column{Qualifier: name, Name: "n", Type: value.KindInt},
		))
		for _, v := range vals {
			r.Append(relation.Tuple{v})
		}
		cat.Register(storage.NewTable(name, r))
	}
	mk("L", value.Int(1), value.Int(2), value.Int(3), value.Null)
	mk("R", value.Int(2), value.Null)

	sub := &algebra.Subquery{Source: algebra.NewScan("R", "R"), OutCol: expr.C("R.n")}
	plan := algebra.NewRestrict(algebra.NewScan("L", "L"), algebra.NotIn(expr.C("L.n"), sub))
	out := runBoth(t, cat, plan, false)
	if out.Len() != 0 {
		t.Errorf("NOT IN over a NULL-bearing set must be empty, got %d rows", out.Len())
	}
	runBoth(t, cat, plan, true)
}

// TestRandomizedEquivalence fuzzes random query shapes over random
// data and checks native ≡ GMDJ ≡ optimized GMDJ.
func TestRandomizedEquivalence(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		cat := netflowCatalog(rng, 100+rng.Intn(200))
		plan := randomPlan(rng)
		runBoth(t, cat, plan, false)
		runBoth(t, cat, plan, true)
	}
}

// randomPlan builds a Restrict over Hours with 1-3 random subquery
// predicates combined by random connectives.
func randomPlan(rng *rand.Rand) algebra.Node {
	dests := []string{"167.167.167.0", "168.168.168.0", "10.0.0.1"}
	mkPred := func(i int) algebra.Pred {
		alias := "FI" + string(rune('0'+i))
		base := &algebra.Subquery{
			Source: algebra.NewScan("Flow", alias),
			Where: &algebra.Atom{E: expr.NewAnd(
				expr.Eq(expr.C(alias+".DestIP"), expr.StrLit(dests[rng.Intn(len(dests))])),
				timeWindow(alias, "H"),
			)},
		}
		switch rng.Intn(4) {
		case 0:
			return algebra.ExistsPred(base)
		case 1:
			return algebra.NotExistsPred(base)
		case 2:
			base.OutCol = expr.C(alias + ".NumBytes")
			return &algebra.SubPred{Kind: algebra.CmpSome, Op: value.LT,
				Left: expr.C("H.StartInterval"), Sub: base}
		default:
			base.OutCol = expr.C(alias + ".NumBytes")
			return &algebra.SubPred{Kind: algebra.CmpAll, Op: value.NE,
				Left: expr.C("H.HourDsc"), Sub: base}
		}
	}
	n := 1 + rng.Intn(3)
	preds := make([]algebra.Pred, n)
	for i := range preds {
		preds[i] = mkPred(i)
		if rng.Intn(3) == 0 {
			preds[i] = algebra.Not(preds[i])
		}
	}
	var w algebra.Pred
	switch {
	case n == 1:
		w = preds[0]
	case rng.Intn(2) == 0:
		w = algebra.And(preds...)
	default:
		w = algebra.Or(preds...)
	}
	return algebra.NewRestrict(algebra.NewScan("Hours", "H"), w)
}

// TestRewritePreservesSubqueryFreePlans: plans without subqueries pass
// through untouched (modulo normalization).
func TestRewritePreservesSubqueryFreePlans(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(15)), 50)
	e := exec.New(cat)
	plan := algebra.Filter(algebra.NewScan("Hours", "H"),
		expr.NewCmp(value.GT, expr.C("H.HourDsc"), expr.IntLit(1)))
	rewritten, err := SubqueryToGMDJ(plan, e)
	if err != nil {
		t.Fatal(err)
	}
	if countGMDJs(rewritten) != 0 {
		t.Error("subquery-free plan gained GMDJs")
	}
	a, _ := e.Run(plan)
	b, _ := e.Run(rewritten)
	if d := a.Diff(b); d != "" {
		t.Error(d)
	}
}

// TestRewrittenPlanHasNoSubqueries: the output of the algorithm is a
// flat algebraic expression (the paper stresses GMDJ expressions are
// regular algebra, not nested queries).
func TestRewrittenPlanHasNoSubqueries(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(16)), 50)
	e := exec.New(cat)
	plan := paperExample23Plan()
	rewritten, err := SubqueryToGMDJ(plan, e)
	if err != nil {
		t.Fatal(err)
	}
	walkNodes(rewritten, func(n algebra.Node) {
		if r, ok := n.(*algebra.Restrict); ok && algebra.HasSubquery(r.Where) {
			t.Errorf("rewritten plan still contains subqueries: %s", r)
		}
	})
}

func TestFreeReferenceAtTopLevelErrors(t *testing.T) {
	cat := netflowCatalog(rand.New(rand.NewSource(17)), 10)
	e := exec.New(cat)
	// Subquery references qualifier Z that exists nowhere.
	sub := &algebra.Subquery{
		Source: algebra.NewScan("Flow", "F"),
		Where:  &algebra.Atom{E: expr.Eq(expr.C("F.SourceIP"), expr.C("Z.Nope"))},
	}
	plan := algebra.NewRestrict(algebra.NewScan("Hours", "H"), algebra.ExistsPred(sub))
	if _, err := SubqueryToGMDJ(plan, e); err == nil ||
		!strings.Contains(err.Error(), "free reference") {
		t.Errorf("unresolvable free reference should error, got %v", err)
	}
}

func countGMDJs(n algebra.Node) int {
	c := 0
	walkNodes(n, func(x algebra.Node) {
		if _, ok := x.(*algebra.GMDJ); ok {
			c++
		}
	})
	return c
}

func walkNodes(n algebra.Node, fn func(algebra.Node)) {
	fn(n)
	for _, c := range n.Children() {
		walkNodes(c, fn)
	}
}
