package rewrite

import (
	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/obs"
	"github.com/olaplab/gmdj/internal/value"
)

// Optimize applies the §4 GMDJ optimizations to a rewritten plan:
// coalescing of adjacent GMDJs over the same detail table (Proposition
// 4.1, including the selection push-up of Example 4.1) followed by
// tuple-completion detection (Theorems 4.1/4.2). The result computes
// the same bag as the input plan.
func Optimize(plan algebra.Node, res algebra.SchemaResolver) (algebra.Node, error) {
	out, err := Coalesce(plan, res)
	if err != nil {
		return nil, err
	}
	return AttachCompletion(out), nil
}

// ---------------------------------------------------------------------------
// Coalescing (Proposition 4.1)

// Coalesce merges stacks of GMDJs that share the same detail table into
// single multi-condition GMDJs, hoisting intervening count selections
// up through the GMDJ (σ commutes with MD when the selection condition
// ranges over base columns only, which count selections always do).
// After coalescing, all merged subqueries are answered in one scan of
// the shared detail table.
func Coalesce(plan algebra.Node, res algebra.SchemaResolver) (algebra.Node, error) {
	switch n := plan.(type) {
	case *algebra.Scan, *algebra.Raw:
		return plan, nil
	case *algebra.Alias:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewAlias(in, n.Name), nil
	case *algebra.Restrict:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewRestrict(in, coalescePred(n.Where, res)), nil
	case *algebra.Project:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewProject(in, n.Distinct, n.Items...), nil
	case *algebra.Distinct:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewDistinct(in), nil
	case *algebra.Join:
		l, err := Coalesce(n.Left, res)
		if err != nil {
			return nil, err
		}
		r, err := Coalesce(n.Right, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewJoin(n.Kind, l, r, n.On), nil
	case *algebra.GroupBy:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewGroupBy(in, n.Keys, n.Aggs), nil
	case *algebra.GMDJ:
		return coalesceGMDJ(n, res)
	case *algebra.Sort:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewSort(in, n.Keys, n.Limit), nil
	case *algebra.SetOp:
		l, err := Coalesce(n.Left, res)
		if err != nil {
			return nil, err
		}
		r, err := Coalesce(n.Right, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewSetOp(n.Kind, l, r), nil
	case *algebra.Number:
		in, err := Coalesce(n.Input, res)
		if err != nil {
			return nil, err
		}
		return algebra.NewNumber(in, n.As), nil
	default:
		return plan, nil
	}
}

// coalescePred recurses into subquery sources inside predicates.
func coalescePred(p algebra.Pred, res algebra.SchemaResolver) algebra.Pred {
	switch n := p.(type) {
	case *algebra.PredAnd:
		terms := make([]algebra.Pred, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = coalescePred(t, res)
		}
		return &algebra.PredAnd{Terms: terms}
	case *algebra.PredOr:
		terms := make([]algebra.Pred, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = coalescePred(t, res)
		}
		return &algebra.PredOr{Terms: terms}
	case *algebra.PredNot:
		return &algebra.PredNot{P: coalescePred(n.P, res)}
	case *algebra.SubPred:
		src, err := Coalesce(n.Sub.Source, res)
		if err != nil {
			return p
		}
		return &algebra.SubPred{Kind: n.Kind, Op: n.Op, Left: n.Left, Sub: &algebra.Subquery{
			Source: src,
			Where:  coalescePred(n.Sub.Where, res),
			OutCol: n.Sub.OutCol,
			Agg:    n.Sub.Agg,
		}}
	default:
		return p
	}
}

// wrapper is one peeled operator sitting between an outer GMDJ and an
// inner GMDJ candidate: a count selection or a plain column projection.
type wrapper struct {
	restrict *algebra.Restrict
	project  *algebra.Project
}

func coalesceGMDJ(g *algebra.GMDJ, res algebra.SchemaResolver) (algebra.Node, error) {
	base, err := Coalesce(g.Base, res)
	if err != nil {
		return nil, err
	}
	detail, err := Coalesce(g.Detail, res)
	if err != nil {
		return nil, err
	}
	cur := algebra.NewGMDJ(base, detail, g.Conds...)
	cur.Completion = g.Completion

	// Peel selections (σ commutes up through MD unconditionally — its
	// condition ranges over base columns only) and plain column
	// projections (π commutes when it keeps every base column the outer
	// conditions reference; the projection is re-targeted to also carry
	// the outer aggregate columns upward).
	inner := algebra.Node(cur.Base)
	var wraps []wrapper
peel:
	for {
		switch w := inner.(type) {
		case *algebra.Restrict:
			if algebra.HasSubquery(w.Where) {
				break peel
			}
			wraps = append(wraps, wrapper{restrict: w})
			inner = w.Input
		case *algebra.Project:
			if w.Distinct {
				break peel
			}
			for _, it := range w.Items {
				if _, ok := it.E.(*expr.Col); !ok || it.As != "" {
					break peel
				}
			}
			wraps = append(wraps, wrapper{project: w})
			inner = w.Input
		default:
			break peel
		}
	}
	ig, ok := inner.(*algebra.GMDJ)
	if !ok || ig.Completion != nil {
		return cur, nil
	}
	rename, same := sameDetail(ig.Detail, cur.Detail)
	if !same {
		return cur, nil
	}
	// The outer conditions must not reference the inner GMDJ's
	// aggregate outputs (merging would change their meaning), and every
	// base-side column they reference must survive each peeled
	// projection.
	innerAggs := aggNames(ig)
	detailAlias := ""
	if sc, isScan := cur.Detail.(*algebra.Scan); isScan {
		detailAlias = sc.EffectiveAlias()
	}
	for _, c := range condCols(cur.Conds) {
		if c.Qualifier == "" && innerAggs[c.Name] {
			return cur, nil
		}
		if c.Qualifier == detailAlias {
			continue // detail-side reference, unaffected by base wraps
		}
		for _, w := range wraps {
			if w.project != nil && !projectKeeps(w.project, c) {
				return cur, nil
			}
		}
	}
	// Merge: rename the outer conditions' detail qualifier to the inner
	// detail's alias and append them.
	merged := append([]algebra.GMDJCond{}, ig.Conds...)
	var outerAggCols []algebra.ProjItem
	for _, c := range cur.Conds {
		theta := c.Theta
		if rename != nil {
			theta = expr.RenameQualifier(theta, rename.from, rename.to)
		}
		aggs := make([]agg.Spec, len(c.Aggs))
		for i, a := range c.Aggs {
			arg := a.Arg
			if arg != nil && rename != nil {
				arg = expr.RenameQualifier(arg, rename.from, rename.to)
			}
			aggs[i] = agg.Spec{Func: a.Func, Arg: arg, As: a.As}
			if a.As != "" {
				outerAggCols = append(outerAggCols, algebra.ProjItem{E: expr.NewCol("", a.As)})
			}
		}
		merged = append(merged, algebra.GMDJCond{Theta: theta, Aggs: aggs})
	}
	next := algebra.NewGMDJ(ig.Base, ig.Detail, merged...)
	obs.MetricAdd("gmdj.coalesced", 1)
	// Re-apply wrappers innermost-first; projections additionally carry
	// the outer aggregate columns upward.
	var result algebra.Node = next
	for i := len(wraps) - 1; i >= 0; i-- {
		w := wraps[i]
		if w.restrict != nil {
			result = algebra.NewRestrict(result, w.restrict.Where)
			continue
		}
		items := append(append([]algebra.ProjItem{}, w.project.Items...), outerAggCols...)
		result = algebra.NewProject(result, false, items...)
	}
	if rg, isG := result.(*algebra.GMDJ); isG {
		return coalesceGMDJ(rg, res) // merge further down
	}
	return Coalesce(result, res)
}

// projectKeeps reports whether a plain-column projection preserves the
// referenced column identity.
func projectKeeps(p *algebra.Project, c *expr.Col) bool {
	for _, it := range p.Items {
		if pc, ok := it.E.(*expr.Col); ok && it.As == "" &&
			pc.Name == c.Name && (c.Qualifier == "" || pc.Qualifier == c.Qualifier) {
			return true
		}
	}
	return false
}

type renameSpec struct{ from, to string }

// sameDetail reports whether two detail plans scan the same base table,
// and if their aliases differ, how to rename the second to the first.
func sameDetail(a, b algebra.Node) (*renameSpec, bool) {
	sa, ok := a.(*algebra.Scan)
	if !ok {
		return nil, false
	}
	sb, ok := b.(*algebra.Scan)
	if !ok {
		return nil, false
	}
	if sa.Table != sb.Table {
		return nil, false
	}
	if sa.EffectiveAlias() == sb.EffectiveAlias() {
		return nil, true
	}
	return &renameSpec{from: sb.EffectiveAlias(), to: sa.EffectiveAlias()}, true
}

// aggNames returns the set of aggregate output names of a GMDJ.
func aggNames(g *algebra.GMDJ) map[string]bool {
	out := map[string]bool{}
	for _, c := range g.Conds {
		for i, a := range c.Aggs {
			name := a.As
			if name == "" {
				name = agg.OutputSchema(c.Aggs, "R")[i].Name
			}
			out[name] = true
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Tuple completion (Theorems 4.1 / 4.2)

// AttachCompletion scans the plan for σ[C](MD(...)) patterns where C is
// a boolean combination of count atoms (cnt = 0, cnt > 0, cnt <> 0,
// cnt >= 1) over the GMDJ's count(*) outputs, and attaches a
// CompletionInfo to the GMDJ. Early True emission (freezing) is enabled
// only when no aggregate column of the GMDJ is referenced above the
// selection — Theorem 4.1's A ∩ (l₁ ∪ … ∪ lₘ) = ∅ requirement.
func AttachCompletion(plan algebra.Node) algebra.Node {
	return attach(plan, map[string]bool{})
}

// attach rewrites the plan top-down; above carries the column names
// referenced by enclosing operators (reset at projection boundaries).
func attach(n algebra.Node, above map[string]bool) algebra.Node {
	switch node := n.(type) {
	case *algebra.Scan, *algebra.Raw:
		return n
	case *algebra.Alias:
		return algebra.NewAlias(attach(node.Input, above), node.Name)
	case *algebra.Restrict:
		sub := union(above, predColNames(node.Where))
		if g, ok := node.Input.(*algebra.GMDJ); ok && g.Completion == nil {
			if atom, isAtom := node.Where.(*algebra.Atom); isAtom {
				if info, ok := buildCompletion(atom.E, g, above); ok {
					g2 := algebra.NewGMDJ(attach(g.Base, sub), attach(g.Detail, sub), g.Conds...)
					g2.Completion = info
					return algebra.NewRestrict(g2, node.Where)
				}
			}
		}
		return algebra.NewRestrict(attach(node.Input, sub), node.Where)
	case *algebra.Project:
		reset := map[string]bool{}
		for _, it := range node.Items {
			for _, c := range expr.Cols(it.E) {
				reset[c.Name] = true
			}
		}
		return algebra.NewProject(attach(node.Input, reset), node.Distinct, node.Items...)
	case *algebra.Distinct:
		return algebra.NewDistinct(attach(node.Input, above))
	case *algebra.Join:
		sub := union(above, exprColNames(node.On))
		return algebra.NewJoin(node.Kind, attach(node.Left, sub), attach(node.Right, sub), node.On)
	case *algebra.GroupBy:
		reset := map[string]bool{}
		for _, k := range node.Keys {
			reset[k.Name] = true
		}
		for _, a := range node.Aggs {
			if a.Arg != nil {
				for _, c := range expr.Cols(a.Arg) {
					reset[c.Name] = true
				}
			}
		}
		return algebra.NewGroupBy(attach(node.Input, reset), node.Keys, node.Aggs)
	case *algebra.GMDJ:
		sub := union(above, condColNames(node.Conds))
		g := algebra.NewGMDJ(attach(node.Base, sub), attach(node.Detail, sub), node.Conds...)
		g.Completion = node.Completion
		return g
	case *algebra.Sort:
		sub := above
		for _, k := range node.Keys {
			sub = union(sub, exprColNames(k.E))
		}
		return algebra.NewSort(attach(node.Input, sub), node.Keys, node.Limit)
	case *algebra.SetOp:
		return algebra.NewSetOp(node.Kind, attach(node.Left, above), attach(node.Right, above))
	case *algebra.Number:
		return algebra.NewNumber(attach(node.Input, above), node.As)
	default:
		return n
	}
}

// buildCompletion parses a selection condition into a completion
// formula over the GMDJ's count(*) outputs.
func buildCompletion(sel expr.Expr, g *algebra.GMDJ, above map[string]bool) (*algebra.CompletionInfo, bool) {
	// Map count column name -> condition index (only lone count(*)
	// aggregates are watchable: their first match is the decision
	// event).
	countCols := map[string]int{}
	for i, c := range g.Conds {
		if len(c.Aggs) == 1 && c.Aggs[0].Func == agg.CountStar && c.Aggs[0].As != "" {
			countCols[c.Aggs[0].As] = i
		}
	}
	if len(countCols) == 0 {
		return nil, false
	}
	var atoms []algebra.CompletionAtom
	atomIdx := map[[2]int]int{} // (cond, kind) -> atom index
	var usable bool
	var parse func(e expr.Expr) *algebra.BoolTree
	parse = func(e expr.Expr) *algebra.BoolTree {
		switch x := e.(type) {
		case *expr.And:
			kids := make([]*algebra.BoolTree, len(x.Terms))
			for i, t := range x.Terms {
				kids[i] = parse(t)
			}
			return algebra.AndTree(kids...)
		case *expr.Or:
			kids := make([]*algebra.BoolTree, len(x.Terms))
			for i, t := range x.Terms {
				kids[i] = parse(t)
			}
			return algebra.OrTree(kids...)
		case *expr.Not:
			return algebra.NotTree(parse(x.E))
		case *expr.Cmp:
			cond, kind, ok := parseCountAtom(x, countCols)
			if !ok {
				return algebra.OpaqueTree()
			}
			key := [2]int{cond, int(kind)}
			idx, seen := atomIdx[key]
			if !seen {
				idx = len(atoms)
				atoms = append(atoms, algebra.CompletionAtom{Cond: cond, Kind: kind})
				atomIdx[key] = idx
			}
			usable = true
			return algebra.Leaf(idx)
		default:
			return algebra.OpaqueTree()
		}
	}
	tree := parse(sel)
	if !usable {
		return nil, false
	}
	// Freezing requires no aggregate output to be consumed upstream.
	freeze := true
	for name := range aggNames(g) {
		if above[name] {
			freeze = false
			break
		}
	}
	return &algebra.CompletionInfo{Atoms: atoms, Tree: tree, FreezeTrue: freeze}, true
}

// parseCountAtom recognizes cnt = 0 (Zero), cnt > 0, cnt <> 0, and
// cnt >= 1 (NonZero), in either operand order.
func parseCountAtom(c *expr.Cmp, countCols map[string]int) (int, algebra.AtomKind, bool) {
	col, lit, op := (*expr.Col)(nil), (*expr.Lit)(nil), c.Op
	if cc, ok := c.L.(*expr.Col); ok {
		if ll, ok2 := c.R.(*expr.Lit); ok2 {
			col, lit = cc, ll
		}
	}
	if col == nil {
		if cc, ok := c.R.(*expr.Col); ok {
			if ll, ok2 := c.L.(*expr.Lit); ok2 {
				col, lit, op = cc, ll, c.Op.Flip()
			}
		}
	}
	if col == nil || col.Qualifier != "" || lit.V.Kind() != value.KindInt {
		return 0, 0, false
	}
	cond, ok := countCols[col.Name]
	if !ok {
		return 0, 0, false
	}
	n := lit.V.AsInt()
	switch {
	case op == value.EQ && n == 0:
		return cond, algebra.AtomZero, true
	case op == value.GT && n == 0, op == value.NE && n == 0, op == value.GE && n == 1:
		return cond, algebra.AtomNonZero, true
	case op == value.LE && n == 0:
		return cond, algebra.AtomZero, true
	default:
		return 0, 0, false
	}
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func exprColNames(e expr.Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range expr.Cols(e) {
		out[c.Name] = true
	}
	return out
}

func condColNames(conds []algebra.GMDJCond) map[string]bool {
	out := map[string]bool{}
	for _, c := range condCols(conds) {
		out[c.Name] = true
	}
	for _, cond := range conds {
		for _, a := range cond.Aggs {
			if a.Arg != nil {
				for _, c := range expr.Cols(a.Arg) {
					out[c.Name] = true
				}
			}
		}
	}
	return out
}

func predColNames(p algebra.Pred) map[string]bool {
	out := map[string]bool{}
	algebra.WalkPred(p, func(q algebra.Pred) bool {
		switch n := q.(type) {
		case *algebra.Atom:
			for _, c := range expr.Cols(n.E) {
				out[c.Name] = true
			}
		case *algebra.SubPred:
			if n.Left != nil {
				for _, c := range expr.Cols(n.Left) {
					out[c.Name] = true
				}
			}
		}
		return true
	})
	return out
}
