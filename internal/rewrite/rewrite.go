// Package rewrite implements Algorithm SubqueryToGMDJ (Theorem 3.5 of
// the paper): the translation of nested query expressions — selections
// whose predicates contain subquery constructs — into flat algebraic
// expressions built from GMDJ operators and count conditions.
//
// The translation follows the paper exactly:
//
//  1. negations are pushed to the atoms (De Morgan) and negations in
//     front of subqueries are eliminated (¬(t φ S) ⇒ t φ̄ S, ¬SOME ⇒
//     ALL, ¬ALL ⇒ SOME, ¬∃ ⇒ ∄);
//  2. each subquery predicate Sᵢ is replaced by a count condition Cᵢ
//     over a GMDJ per the Table 1 mapping;
//  3. linearly nested subqueries recurse inner-most first (Theorem
//     3.2): the inner block's GMDJ becomes the detail relation of the
//     enclosing block's GMDJ;
//  4. non-neighboring correlation predicates are repaired by pushing
//     the referenced outer base table down into the offending block's
//     base (Theorems 3.3/3.4), with a fresh alias and a glue equality
//     added one level up — introducing exactly the n−1 joins the paper
//     proves necessary.
//
// The optimizations of §4 — coalescing (Proposition 4.1) and tuple
// completion (Theorems 4.1/4.2) — live in optimize.go and are applied
// by Optimize on the output of SubqueryToGMDJ.
package rewrite

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/agg"
	"github.com/olaplab/gmdj/internal/algebra"
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/value"
)

// SubqueryToGMDJ rewrites every Restrict node containing subquery
// predicates into a GMDJ expression. The resolver is needed to compute
// block schemas for free-reference (correlation) analysis.
func SubqueryToGMDJ(plan algebra.Node, res algebra.SchemaResolver) (algebra.Node, error) {
	return SubqueryToGMDJOpts(plan, res, Options{})
}

// Options tunes the translation.
type Options struct {
	// AllCounterexample translates ALL subqueries to a single
	// counterexample count — σ[cnt = 0] over θ ∧ ¬(x φ y is true) —
	// instead of Table 1's two-count form. The two are equivalent
	// under where-clause truncation, but the counterexample form is
	// eligible for tuple completion (Theorem 4.2), which is what makes
	// the optimized GMDJ competitive in the paper's Figure 4.
	AllCounterexample bool
}

// SubqueryToGMDJOpts is SubqueryToGMDJ with explicit options.
func SubqueryToGMDJOpts(plan algebra.Node, res algebra.SchemaResolver, opts Options) (algebra.Node, error) {
	rw := &rewriter{res: res, opts: opts}
	return rw.rewriteNode(plan)
}

type rewriter struct {
	res     algebra.SchemaResolver
	opts    Options
	counter int
}

func (rw *rewriter) fresh(prefix string) string {
	rw.counter++
	return fmt.Sprintf("%s%d", prefix, rw.counter)
}

// rewriteNode walks the plan, transforming subquery-bearing Restricts.
func (rw *rewriter) rewriteNode(n algebra.Node) (algebra.Node, error) {
	switch node := n.(type) {
	case *algebra.Scan, *algebra.Raw:
		return n, nil
	case *algebra.Alias:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewAlias(in, node.Name), nil
	case *algebra.Restrict:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return rw.rewriteRestrict(in, node.Where)
	case *algebra.Project:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewProject(in, node.Distinct, node.Items...), nil
	case *algebra.Distinct:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewDistinct(in), nil
	case *algebra.Join:
		l, err := rw.rewriteNode(node.Left)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteNode(node.Right)
		if err != nil {
			return nil, err
		}
		return algebra.NewJoin(node.Kind, l, r, node.On), nil
	case *algebra.GroupBy:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewGroupBy(in, node.Keys, node.Aggs), nil
	case *algebra.GMDJ:
		b, err := rw.rewriteNode(node.Base)
		if err != nil {
			return nil, err
		}
		d, err := rw.rewriteNode(node.Detail)
		if err != nil {
			return nil, err
		}
		out := algebra.NewGMDJ(b, d, node.Conds...)
		out.Completion = node.Completion
		return out, nil
	case *algebra.Sort:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewSort(in, node.Keys, node.Limit), nil
	case *algebra.SetOp:
		l, err := rw.rewriteNode(node.Left)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteNode(node.Right)
		if err != nil {
			return nil, err
		}
		return algebra.NewSetOp(node.Kind, l, r), nil
	case *algebra.Number:
		in, err := rw.rewriteNode(node.Input)
		if err != nil {
			return nil, err
		}
		return algebra.NewNumber(in, node.As), nil
	default:
		return nil, fmt.Errorf("rewrite: unsupported node %T", n)
	}
}

// rewriteRestrict is the top-level entry of the algorithm: it receives
// the (already rewritten) input B and the predicate W of σ[W](B).
func (rw *rewriter) rewriteRestrict(input algebra.Node, w algebra.Pred) (algebra.Node, error) {
	w = algebra.PushDownNegations(w)
	if !algebra.HasSubquery(w) {
		return algebra.NewRestrict(input, w), nil
	}
	inSchema, err := input.Schema(rw.res)
	if err != nil {
		return nil, err
	}
	base, w2, err := rw.eliminate(input, inSchema, w, nil)
	if err != nil {
		return nil, err
	}
	sel, err := predToExpr(w2)
	if err != nil {
		return nil, err
	}
	filtered := algebra.Filter(base, sel)
	// Project back to the original schema (drop the count columns).
	items := make([]algebra.ProjItem, inSchema.Len())
	for i, c := range inSchema.Columns {
		items[i] = algebra.ProjItem{E: expr.NewCol(c.Qualifier, c.Name)}
	}
	return algebra.NewProject(filtered, false, items...), nil
}

// envEntry is one enclosing block visible to a nested subquery: the
// block's base plan and its schema. Free references into it are
// repaired by push-down.
type envEntry struct {
	node   algebra.Node
	schema *relation.Schema
}

// eliminate removes every subquery predicate from w by stacking GMDJs
// on top of base. It returns the stacked plan and the rewritten
// predicate. env lists the enclosing blocks (outermost first) for
// non-neighboring repair; glue conjuncts needed by the caller are
// appended to *w2* by the caller via lift — at the top level env is nil
// and any remaining free reference is an error.
func (rw *rewriter) eliminate(base algebra.Node, baseSchema *relation.Schema, w algebra.Pred, env []envEntry) (algebra.Node, algebra.Pred, error) {
	type pending struct {
		sp     *algebra.SubPred
		detail algebra.Node
		conds  []algebra.GMDJCond
		repl   expr.Expr
	}
	var work []pending
	collect := func(p algebra.Pred) {
		algebra.WalkPred(p, func(q algebra.Pred) bool {
			if sp, ok := q.(*algebra.SubPred); ok {
				work = append(work, pending{sp: sp})
			}
			return true
		})
	}
	collect(w)

	envForNested := append(append([]envEntry{}, env...), envEntry{node: base, schema: baseSchema})

	cur := base
	replacements := map[*algebra.SubPred]algebra.Pred{}
	for i := range work {
		p := &work[i]
		detail, theta, err := rw.lift(p.sp.Sub, envForNested)
		if err != nil {
			return nil, nil, err
		}
		conds, repl, err := rw.table1(p.sp, theta)
		if err != nil {
			return nil, nil, err
		}
		// Free-reference check: θ must range over base ∪ detail.
		detailSchema, err := detail.Schema(rw.res)
		if err != nil {
			return nil, nil, err
		}
		for _, c := range condCols(conds) {
			if resolvesIn(c, baseSchema) || resolvesIn(c, detailSchema) {
				continue
			}
			return nil, nil, fmt.Errorf("rewrite: free reference %s cannot be resolved at the outermost block", c)
		}
		g := algebra.NewGMDJ(cur, detail, conds...)
		cur = g
		// base schema grows by the new aggregate columns; recompute so
		// later free-reference checks see them.
		baseSchema, err = cur.Schema(rw.res)
		if err != nil {
			return nil, nil, err
		}
		replacements[p.sp] = &algebra.Atom{E: repl}
	}
	w2 := substitute(w, replacements)
	return cur, w2, nil
}

// lift converts a subquery block S into (detail plan, θ condition) for
// use in an enclosing GMDJ (Theorem 3.2). Nested subqueries inside S's
// predicate are themselves eliminated by stacking GMDJs over S's
// source. Non-neighboring references are repaired here: the referenced
// enclosing base is pushed (cross-joined, freshly aliased) into S's
// source and a glue equality is appended to the returned θ.
func (rw *rewriter) lift(sub *algebra.Subquery, env []envEntry) (algebra.Node, expr.Expr, error) {
	source := sub.Source
	srcSchema, err := source.Schema(rw.res)
	if err != nil {
		return nil, nil, err
	}
	pred := sub.Where
	if pred == nil {
		pred = &algebra.Atom{E: expr.TrueExpr()}
	}

	// Gather nested subquery predicates.
	var nested []*algebra.SubPred
	algebra.WalkPred(pred, func(q algebra.Pred) bool {
		if sp, ok := q.(*algebra.SubPred); ok {
			nested = append(nested, sp)
		}
		return true
	})

	type liftedSub struct {
		sp     *algebra.SubPred
		detail algebra.Node
		conds  []algebra.GMDJCond
		repl   expr.Expr
	}
	var lifted []liftedSub
	envForNested := append(append([]envEntry{}, env...), envEntry{node: source, schema: srcSchema})
	for _, sp := range nested {
		d, theta, err := rw.lift(sp.Sub, envForNested)
		if err != nil {
			return nil, nil, err
		}
		conds, repl, err := rw.table1(sp, theta)
		if err != nil {
			return nil, nil, err
		}
		lifted = append(lifted, liftedSub{sp: sp, detail: d, conds: conds, repl: repl})
	}

	// Non-neighboring repair (Theorems 3.3/3.4): any condition column
	// that resolves neither in this block's source nor in its own
	// detail must come from an enclosing block — push that block's base
	// down into source under a fresh alias and remember the glue.
	var glue []expr.Expr
	pushed := map[*envEntry]string{} // env entry -> fresh alias
	for i := range lifted {
		ls := &lifted[i]
		dSchema, err := ls.detail.Schema(rw.res)
		if err != nil {
			return nil, nil, err
		}
		for _, c := range condCols(ls.conds) {
			if resolvesIn(c, srcSchema) || resolvesIn(c, dSchema) {
				continue
			}
			// Find the enclosing block providing this column.
			entry := findEnv(env, c)
			if entry == nil {
				return nil, nil, fmt.Errorf("rewrite: free reference %s resolves in no enclosing block", c)
			}
			alias, ok := pushed[entry]
			if !ok {
				alias = rw.fresh("pd")
				pushed[entry] = alias
				copyNode := algebra.NewAlias(entry.node, alias)
				source = algebra.NewJoin(algebra.InnerJoin, copyNode, source, expr.TrueExpr())
				srcSchema, err = source.Schema(rw.res)
				if err != nil {
					return nil, nil, err
				}
				// Glue: every column of the pushed block must agree
				// between the enclosing base and the pushed copy.
				for _, col := range entry.schema.Columns {
					glue = append(glue, expr.Eq(
						expr.NewCol(col.Qualifier, col.Name),
						expr.NewCol(alias, col.Name),
					))
				}
			}
			// Re-qualify the free reference to the pushed copy in all
			// of this lifted sub's conditions.
			for ci := range ls.conds {
				ls.conds[ci].Theta = expr.RenameQualifier(ls.conds[ci].Theta, c.Qualifier, alias)
			}
		}
	}

	// Stack the GMDJs for nested subqueries over the (possibly
	// augmented) source, and substitute count conditions into pred.
	cur := source
	replacements := map[*algebra.SubPred]algebra.Pred{}
	for _, ls := range lifted {
		cur = algebra.NewGMDJ(cur, ls.detail, ls.conds...)
		replacements[ls.sp] = &algebra.Atom{E: ls.repl}
	}
	pred2 := substitute(pred, replacements)
	theta, err := predToExpr(pred2)
	if err != nil {
		return nil, nil, err
	}
	if len(glue) > 0 {
		theta = expr.NewAnd(append([]expr.Expr{theta}, glue...)...)
	}
	return cur, theta, nil
}

// table1 applies the Table 1 mapping for one subquery predicate whose
// correlation condition θ is already flattened. It returns the GMDJ
// condition list and the replacement count condition Cᵢ.
func (rw *rewriter) table1(sp *algebra.SubPred, theta expr.Expr) ([]algebra.GMDJCond, expr.Expr, error) {
	count := func(name string) []agg.Spec {
		return []agg.Spec{{Func: agg.CountStar, As: name}}
	}
	switch sp.Kind {
	case algebra.Exists:
		cnt := rw.fresh("cnt")
		return []algebra.GMDJCond{{Theta: theta, Aggs: count(cnt)}},
			expr.NewCmp(value.GT, expr.C(cnt), expr.IntLit(0)), nil

	case algebra.NotExists:
		cnt := rw.fresh("cnt")
		return []algebra.GMDJCond{{Theta: theta, Aggs: count(cnt)}},
			expr.Eq(expr.C(cnt), expr.IntLit(0)), nil

	case algebra.CmpSome:
		if sp.Sub.OutCol == nil {
			return nil, nil, fmt.Errorf("rewrite: SOME subquery lacks an output column")
		}
		cnt := rw.fresh("cnt")
		th := expr.NewAnd(theta, expr.NewCmp(sp.Op, expr.Clone(sp.Left), colRef(sp.Sub.OutCol)))
		return []algebra.GMDJCond{{Theta: th, Aggs: count(cnt)}},
			expr.NewCmp(value.GT, expr.C(cnt), expr.IntLit(0)), nil

	case algebra.CmpAll:
		if sp.Sub.OutCol == nil {
			return nil, nil, fmt.Errorf("rewrite: ALL subquery lacks an output column")
		}
		if rw.opts.AllCounterexample {
			// b survives iff no r has θ true while x φ y is false or
			// unknown. The counterexamples split exactly into three
			// disjointly-countable classes:
			//
			//	θ ∧ (x φ̄ y)        — the comparison is definitely false
			//	θ ∧ x IS NULL      — unknown because x is NULL
			//	θ ∧ y IS NULL      — unknown because y is NULL
			//
			// Splitting matters: for ≠-ALL (NOT IN) the first class is
			// an equality x = y, which the GMDJ evaluator turns into a
			// hash binding, and the NULL classes are gated by base-only
			// and detail-only predicates that cost nothing when the
			// data has no NULLs. All three counts must be zero, and all
			// three are ZERO completion atoms (Theorem 4.2).
			cntF, cntX, cntY := rw.fresh("cnt"), rw.fresh("cnt"), rw.fresh("cnt")
			cmpFalse := expr.NewCmp(sp.Op.Negate(), expr.Clone(sp.Left), colRef(sp.Sub.OutCol))
			conds := []algebra.GMDJCond{
				{Theta: expr.NewAnd(expr.Clone(theta), cmpFalse), Aggs: count(cntF)},
				{Theta: expr.NewAnd(expr.Clone(theta), expr.NewIsNull(expr.Clone(sp.Left), false)), Aggs: count(cntX)},
				{Theta: expr.NewAnd(expr.Clone(theta), expr.NewIsNull(colRef(sp.Sub.OutCol), false)), Aggs: count(cntY)},
			}
			sel := expr.NewAnd(
				expr.Eq(expr.C(cntF), expr.IntLit(0)),
				expr.Eq(expr.C(cntX), expr.IntLit(0)),
				expr.Eq(expr.C(cntY), expr.IntLit(0)),
			)
			return conds, sel, nil
		}
		cnt1, cnt2 := rw.fresh("cnt"), rw.fresh("cnt")
		th1 := expr.NewAnd(expr.Clone(theta), expr.NewCmp(sp.Op, expr.Clone(sp.Left), colRef(sp.Sub.OutCol)))
		return []algebra.GMDJCond{
				{Theta: th1, Aggs: count(cnt1)},
				{Theta: theta, Aggs: count(cnt2)},
			},
			expr.Eq(expr.C(cnt1), expr.C(cnt2)), nil

	case algebra.ScalarCmp:
		if sp.Sub.Agg != nil {
			name := rw.fresh("agg")
			spec := agg.Spec{Func: sp.Sub.Agg.Func, Arg: sp.Sub.Agg.Arg, As: name}
			return []algebra.GMDJCond{{Theta: theta, Aggs: []agg.Spec{spec}}},
				expr.NewCmp(sp.Op, expr.Clone(sp.Left), expr.C(name)), nil
		}
		if sp.Sub.OutCol == nil {
			return nil, nil, fmt.Errorf("rewrite: scalar subquery lacks an output column or aggregate")
		}
		cnt := rw.fresh("cnt")
		th := expr.NewAnd(theta, expr.NewCmp(sp.Op, expr.Clone(sp.Left), colRef(sp.Sub.OutCol)))
		return []algebra.GMDJCond{{Theta: th, Aggs: count(cnt)}},
			expr.Eq(expr.C(cnt), expr.IntLit(1)), nil

	default:
		return nil, nil, fmt.Errorf("rewrite: unknown subquery kind %v", sp.Kind)
	}
}

func colRef(c *expr.Col) expr.Expr { return expr.NewCol(c.Qualifier, c.Name) }

// condCols lists every column referenced by a condition list.
func condCols(conds []algebra.GMDJCond) []*expr.Col {
	var out []*expr.Col
	for _, c := range conds {
		out = append(out, expr.Cols(c.Theta)...)
	}
	return out
}

func resolvesIn(c *expr.Col, s *relation.Schema) bool {
	_, err := s.Find(c.Qualifier, c.Name)
	return err == nil
}

func findEnv(env []envEntry, c *expr.Col) *envEntry {
	// Innermost enclosing block wins.
	for i := len(env) - 1; i >= 0; i-- {
		if resolvesIn(c, env[i].schema) {
			return &env[i]
		}
	}
	return nil
}

// substitute replaces subquery predicates by their count conditions.
func substitute(p algebra.Pred, repl map[*algebra.SubPred]algebra.Pred) algebra.Pred {
	switch n := p.(type) {
	case *algebra.Atom:
		return n
	case *algebra.PredAnd:
		terms := make([]algebra.Pred, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = substitute(t, repl)
		}
		return &algebra.PredAnd{Terms: terms}
	case *algebra.PredOr:
		terms := make([]algebra.Pred, len(n.Terms))
		for i, t := range n.Terms {
			terms[i] = substitute(t, repl)
		}
		return &algebra.PredOr{Terms: terms}
	case *algebra.PredNot:
		return &algebra.PredNot{P: substitute(n.P, repl)}
	case *algebra.SubPred:
		if r, ok := repl[n]; ok {
			return r
		}
		return n
	default:
		return p
	}
}

// predToExpr flattens a subquery-free predicate tree to an expression.
func predToExpr(p algebra.Pred) (expr.Expr, error) {
	switch n := p.(type) {
	case *algebra.Atom:
		return n.E, nil
	case *algebra.PredAnd:
		terms := make([]expr.Expr, len(n.Terms))
		for i, t := range n.Terms {
			e, err := predToExpr(t)
			if err != nil {
				return nil, err
			}
			terms[i] = e
		}
		return expr.NewAnd(terms...), nil
	case *algebra.PredOr:
		terms := make([]expr.Expr, len(n.Terms))
		for i, t := range n.Terms {
			e, err := predToExpr(t)
			if err != nil {
				return nil, err
			}
			terms[i] = e
		}
		return expr.NewOr(terms...), nil
	case *algebra.PredNot:
		e, err := predToExpr(n.P)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	case *algebra.SubPred:
		return nil, fmt.Errorf("rewrite: internal error — unsubstituted subquery predicate %s", n)
	default:
		return nil, fmt.Errorf("rewrite: unknown predicate %T", p)
	}
}
