package relation

import (
	"testing"

	"github.com/olaplab/gmdj/internal/value"
)

func batchTestSchema() *Schema {
	return NewSchema(
		Column{Qualifier: "t", Name: "a", Type: value.KindInt},
		Column{Qualifier: "t", Name: "b", Type: value.KindString},
	)
}

func TestBatchAppendAndReset(t *testing.T) {
	b := NewBatch(batchTestSchema(), 4)
	if b.Cap() != 4 || b.Len() != 0 {
		t.Fatalf("fresh batch: cap=%d len=%d", b.Cap(), b.Len())
	}
	r1 := Tuple{value.Int(1), value.Str("x")}
	r2 := Tuple{value.Int(2), value.Str("y")}
	b.AppendRef(r1)
	b.AppendRef(r2)
	if b.Len() != 2 {
		t.Fatalf("len=%d, want 2", b.Len())
	}
	// References are shared, not copied.
	if &b.Row(0)[0] != &r1[0] {
		t.Fatal("AppendRef copied the tuple")
	}
	b.Reset()
	if b.Len() != 0 || b.Cap() != 4 {
		t.Fatalf("after reset: len=%d cap=%d", b.Len(), b.Cap())
	}
}

func TestBatchColumnsTranspose(t *testing.T) {
	b := NewBatch(batchTestSchema(), 8)
	for i := 0; i < 3; i++ {
		b.AppendRef(Tuple{value.Int(int64(i)), value.Str("s")})
	}
	cols := b.Columns()
	if len(cols) != 2 {
		t.Fatalf("columns=%d, want 2", len(cols))
	}
	for i := 0; i < 3; i++ {
		if cols[0][i].AsInt() != int64(i) {
			t.Fatalf("col0[%d]=%v", i, cols[0][i])
		}
	}
	// Mutation invalidates the cached transpose.
	b.SetRow(1, Tuple{value.Int(42), value.Str("z")})
	cols = b.Columns()
	if cols[0][1].AsInt() != 42 {
		t.Fatalf("transpose not refreshed: col0[1]=%v", cols[0][1])
	}
}

func TestBatchTruncateCompact(t *testing.T) {
	b := NewBatch(batchTestSchema(), 8)
	rows := make([]Tuple, 5)
	for i := range rows {
		rows[i] = Tuple{value.Int(int64(i)), value.Str("s")}
		b.AppendRef(rows[i])
	}
	// Compact rows 1 and 3 to the front, as a filter would.
	keep := 0
	for i := 0; i < b.Len(); i++ {
		if i == 1 || i == 3 {
			b.SetRow(keep, b.Row(i))
			keep++
		}
	}
	b.Truncate(keep)
	if b.Len() != 2 {
		t.Fatalf("len=%d, want 2", b.Len())
	}
	if b.Row(0)[0].AsInt() != 1 || b.Row(1)[0].AsInt() != 3 {
		t.Fatalf("compact kept %v %v", b.Row(0), b.Row(1))
	}
}

func TestBatchAppendToRelation(t *testing.T) {
	b := NewBatch(batchTestSchema(), 4)
	r1 := Tuple{value.Int(1), value.Str("x")}
	b.AppendRef(r1)
	rel := New(batchTestSchema())
	b.AppendTo(rel)
	if rel.Len() != 1 {
		t.Fatalf("rel len=%d", rel.Len())
	}
	if &rel.Rows[0][0] != &r1[0] {
		t.Fatal("AppendTo copied the tuple")
	}
}

func TestBatchSteadyStateAllocs(t *testing.T) {
	b := NewBatch(batchTestSchema(), DefaultBatchCap)
	row := Tuple{value.Int(7), value.Str("x")}
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for !b.Full() {
			b.AppendRef(row)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state fill allocates %.1f allocs/op, want 0", allocs)
	}
}
