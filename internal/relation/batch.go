package relation

import (
	"fmt"

	"github.com/olaplab/gmdj/internal/value"
)

// DefaultBatchCap is the number of rows a Batch holds. The figure is a
// cache-residency compromise: at ~40 bytes per value a 1024-row batch
// of a handful of columns stays within L2 while amortizing per-batch
// bookkeeping (bounds checks, governance ticks, channel-free morsel
// claims) over a thousand rows.
const DefaultBatchCap = 1024

// Batch is one columnar chunk of rows flowing through the batched
// operator API (exec.NextBatch). Its storage — the row-reference
// vector and the per-column value vectors — is allocated once at the
// batch's capacity and reused across NextBatch calls, so a steady-state
// scan→filter→probe pipeline performs no per-row allocations.
//
// A batch carries rows in two coupled representations:
//
//   - Row references (always present): Row(i) returns the i-th tuple.
//     When an operator appends an existing materialized tuple
//     (AppendRef), the reference is shared — exactly the tuple-sharing
//     discipline of the materializing executor, which is what makes
//     batched and serial execution byte-identical and keeps the hot
//     path allocation-free.
//   - Column vectors (materialized on demand): Columns() transposes the
//     batch into fixed-capacity per-column vectors, reused across
//     calls. Vectorized consumers (hash-key computation, projection
//     evaluation over many rows) read these; row-shaped consumers never
//     pay for the transpose.
type Batch struct {
	schema *Schema
	rows   []Tuple // length cap; first n entries valid
	cols   [][]value.Value
	colsOK bool // cols mirror rows[:n]
	n      int
}

// NewBatch allocates a batch for the given schema. capacity <= 0 uses
// DefaultBatchCap.
func NewBatch(s *Schema, capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchCap
	}
	return &Batch{schema: s, rows: make([]Tuple, capacity)}
}

// Schema returns the batch's schema.
func (b *Batch) Schema() *Schema { return b.schema }

// Bind repoints the batch at a new schema (e.g. when a reused batch
// moves to the next operator's output). The width must match any rows
// still in the batch, so Bind implies Reset.
func (b *Batch) Bind(s *Schema) {
	b.schema = s
	b.Reset()
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return b.n }

// Cap returns the row capacity.
func (b *Batch) Cap() int { return len(b.rows) }

// Full reports whether the batch has reached capacity.
func (b *Batch) Full() bool { return b.n == len(b.rows) }

// Reset empties the batch, keeping all storage for reuse.
func (b *Batch) Reset() {
	b.n = 0
	b.colsOK = false
}

// AppendRef appends a row by reference: the tuple is shared, not
// copied, so downstream operators that emit it preserve the serial
// engine's tuple identity. This is the hot-path append — no allocation,
// one slice-header store.
func (b *Batch) AppendRef(t Tuple) {
	if b.n == len(b.rows) {
		panic(fmt.Sprintf("relation: append to full batch (cap %d)", len(b.rows)))
	}
	b.rows[b.n] = t
	b.n++
	b.colsOK = false
}

// Row returns the i-th row (shared reference).
func (b *Batch) Row(i int) Tuple { return b.rows[i] }

// Rows returns the valid prefix of the row-reference vector. The slice
// aliases batch storage: it is invalidated by Reset and the next
// NextBatch call.
func (b *Batch) Rows() []Tuple { return b.rows[:b.n] }

// Truncate shortens the batch to n rows (a filter's in-place compact
// ends with Truncate).
func (b *Batch) Truncate(n int) {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("relation: truncate batch of %d rows to %d", b.n, n))
	}
	b.n = n
	b.colsOK = false
}

// SetRow replaces the i-th row reference (filters compact passing rows
// toward the front with SetRow + Truncate).
func (b *Batch) SetRow(i int, t Tuple) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("relation: SetRow(%d) outside batch of %d rows", i, b.n))
	}
	b.rows[i] = t
	b.colsOK = false
}

// Columns materializes and returns the columnar view: one fixed-
// capacity vector per schema column, valid for rows [0, Len()). The
// vectors are allocated once (first call) and reused; the transpose
// runs only when the batch changed since the last call. The returned
// slices alias batch storage.
func (b *Batch) Columns() [][]value.Value {
	w := b.schema.Len()
	if b.cols == nil {
		b.cols = make([][]value.Value, w)
		for c := range b.cols {
			b.cols[c] = make([]value.Value, len(b.rows))
		}
	}
	if !b.colsOK {
		for i := 0; i < b.n; i++ {
			row := b.rows[i]
			for c := 0; c < w; c++ {
				b.cols[c][i] = row[c]
			}
		}
		b.colsOK = true
	}
	out := make([][]value.Value, w)
	for c := range out {
		out[c] = b.cols[c][:b.n]
	}
	return out
}

// AppendTo appends every row of the batch to a relation, by reference.
func (b *Batch) AppendTo(r *Relation) {
	for i := 0; i < b.n; i++ {
		r.Append(b.rows[i])
	}
}
