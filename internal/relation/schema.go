// Package relation defines schemas, tuples, and materialized relations
// — the data plane every operator in the engine consumes and produces.
//
// Columns are addressed positionally at execution time; names (with a
// relation qualifier, e.g. "F.StartTime") exist for binding expressions
// and for display. Renaming a relation (the paper's Flow → F) only
// rewrites qualifiers.
package relation

import (
	"fmt"
	"strings"

	"github.com/olaplab/gmdj/internal/value"
)

// Column describes one attribute of a schema.
type Column struct {
	// Qualifier is the relation alias the column belongs to ("F", "H").
	// It may be empty for computed columns.
	Qualifier string
	// Name is the attribute name ("StartTime").
	Name string
	// Type is the declared kind. KindNull means "unknown/any" and is
	// used for computed columns whose type depends on the data.
	Type value.Kind
}

// QualifiedName returns "Qualifier.Name", or just "Name" when there is
// no qualifier.
func (c Column) QualifiedName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Find resolves a column reference to its position. The reference may
// be qualified ("F.StartTime") or bare ("StartTime"). A bare reference
// is ambiguous when several columns share the name; Find reports that
// as an error so binders fail loudly rather than picking one.
func (s *Schema) Find(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if c.Name != name {
			continue
		}
		if qualifier != "" && c.Qualifier != qualifier {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("relation: ambiguous column reference %q", joinRef(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("relation: unknown column %q in schema %s", joinRef(qualifier, name), s)
	}
	return found, nil
}

func joinRef(q, n string) string {
	if q == "" {
		return n
	}
	return q + "." + n
}

// Concat returns a new schema with the columns of s followed by those
// of o. Used by joins and by the GMDJ (whose θ conditions range over
// the concatenation of a base tuple and a detail tuple).
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// Rename returns a copy of the schema with every column's qualifier
// replaced by alias (the algebra's R → A).
func (s *Schema) Rename(alias string) *Schema {
	cols := make([]Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = Column{Qualifier: alias, Name: c.Name, Type: c.Type}
	}
	return &Schema{Columns: cols}
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// String renders the schema as "(F.A INT, F.B STRING)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}
