package relation

import (
	"fmt"
	"sort"
	"strings"

	"github.com/olaplab/gmdj/internal/value"
)

// Tuple is one row: a slice of values positionally aligned with a
// schema.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns t followed by o as a new tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Equal reports structural equality (NULL == NULL).
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !value.Equal(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Hash combines the hashes of all values; Equal tuples hash alike.
func (t Tuple) Hash() uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, v := range t {
		h ^= v.Hash()
		h *= 1099511628211 // FNV prime
	}
	return h
}

// ApproxBytes estimates the in-memory footprint of the tuple: slice
// header, per-value struct size, and string payloads. Query governance
// charges this amount against the memory budget at relation-append
// time; it is an estimate (map/index overhead is not modeled), which
// is all a budget needs.
func (t Tuple) ApproxBytes() int64 {
	const (
		sliceHeader = 24 // ptr + len + cap
		valueSize   = 40 // value.Value: kind (padded) + int64 + float64 + string header
	)
	n := int64(sliceHeader) + int64(len(t))*valueSize
	for _, v := range t {
		if v.Kind() == value.KindString {
			n += int64(len(v.AsString()))
		}
	}
	return n
}

// Key renders the tuple as a canonical string, usable as a map key when
// exact (collision-free) grouping is needed.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte(v.Kind()) + '0')
		b.WriteString(v.String())
	}
	return b.String()
}

// String renders the tuple as "[a, b, c]".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Relation is a materialized bag of tuples with a schema. Operators
// exchange Relations when pipelining is not possible (e.g. the GMDJ's
// base-values argument must be materialized by definition).
type Relation struct {
	Schema *Schema
	Rows   []Tuple
}

// New creates an empty relation with the given schema.
func New(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// Append adds a row. The row length must match the schema; this is the
// engine's single structural invariant and is checked eagerly.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.Schema.Len() {
		panic(fmt.Sprintf("relation: row width %d does not match schema width %d", len(t), r.Schema.Len()))
	}
	r.Rows = append(r.Rows, t)
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone deep-copies the relation (schema shared structurally, rows
// copied).
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema.Clone(), Rows: make([]Tuple, len(r.Rows))}
	for i, t := range r.Rows {
		out.Rows[i] = t.Clone()
	}
	return out
}

// Rename returns a shallow copy whose schema qualifiers are replaced by
// alias. Rows are shared: renaming is metadata-only, as in the algebra.
func (r *Relation) Rename(alias string) *Relation {
	return &Relation{Schema: r.Schema.Rename(alias), Rows: r.Rows}
}

// canonicalRows returns sorted textual row keys, for order-insensitive
// comparison.
func (r *Relation) canonicalRows() []string {
	keys := make([]string, len(r.Rows))
	for i, t := range r.Rows {
		keys[i] = t.Key()
	}
	sort.Strings(keys)
	return keys
}

// EqualBag reports whether two relations contain the same bag of rows,
// ignoring order and schema qualifiers (but requiring equal width).
// This is the equivalence the paper's correctness claims are about: all
// evaluation strategies must yield the same bag.
func (r *Relation) EqualBag(o *Relation) bool {
	if r.Schema.Len() != o.Schema.Len() || len(r.Rows) != len(o.Rows) {
		return false
	}
	a, b := r.canonicalRows(), o.canonicalRows()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff describes the first difference between two relations as a
// human-readable string, or "" when EqualBag holds. Useful in tests.
func (r *Relation) Diff(o *Relation) string {
	if r.Schema.Len() != o.Schema.Len() {
		return fmt.Sprintf("width mismatch: %d vs %d", r.Schema.Len(), o.Schema.Len())
	}
	if len(r.Rows) != len(o.Rows) {
		return fmt.Sprintf("row count mismatch: %d vs %d", len(r.Rows), len(o.Rows))
	}
	a, b := r.canonicalRows(), o.canonicalRows()
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	return ""
}

// String renders the relation as an aligned text table (header + rows),
// truncated at 50 rows for sanity in logs.
func (r *Relation) String() string {
	var b strings.Builder
	headers := make([]string, r.Schema.Len())
	widths := make([]int, r.Schema.Len())
	for i, c := range r.Schema.Columns {
		headers[i] = c.QualifiedName()
		widths[i] = len(headers[i])
	}
	limit := len(r.Rows)
	const maxRows = 50
	if limit > maxRows {
		limit = maxRows
	}
	cells := make([][]string, limit)
	for i := 0; i < limit; i++ {
		row := make([]string, r.Schema.Len())
		for j, v := range r.Rows[i] {
			row[j] = v.String()
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		cells[i] = row
	}
	writeRow := func(parts []string) {
		for j, p := range parts {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(p)
			for k := len(p); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for j := range headers {
		if j > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	if len(r.Rows) > maxRows {
		fmt.Fprintf(&b, "... (%d more rows)\n", len(r.Rows)-maxRows)
	}
	return b.String()
}

// SortByKey orders rows by their canonical key, giving deterministic
// output for display and golden tests.
func (r *Relation) SortByKey() {
	sort.Slice(r.Rows, func(i, j int) bool {
		return r.Rows[i].Key() < r.Rows[j].Key()
	})
}
