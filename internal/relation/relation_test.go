package relation

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/olaplab/gmdj/internal/value"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Qualifier: "F", Name: "A", Type: value.KindInt},
		Column{Qualifier: "F", Name: "B", Type: value.KindString},
	)
}

func TestColumnQualifiedName(t *testing.T) {
	c := Column{Qualifier: "F", Name: "X"}
	if c.QualifiedName() != "F.X" {
		t.Errorf("got %q", c.QualifiedName())
	}
	c.Qualifier = ""
	if c.QualifiedName() != "X" {
		t.Errorf("got %q", c.QualifiedName())
	}
}

func TestSchemaFind(t *testing.T) {
	s := testSchema()
	if i, err := s.Find("F", "A"); err != nil || i != 0 {
		t.Errorf("Find(F.A) = %d, %v", i, err)
	}
	if i, err := s.Find("", "B"); err != nil || i != 1 {
		t.Errorf("Find(B) = %d, %v", i, err)
	}
	if _, err := s.Find("G", "A"); err == nil {
		t.Error("Find(G.A) should fail")
	}
	if _, err := s.Find("", "Z"); err == nil {
		t.Error("Find(Z) should fail")
	}
}

func TestSchemaFindAmbiguous(t *testing.T) {
	s := NewSchema(
		Column{Qualifier: "A", Name: "X", Type: value.KindInt},
		Column{Qualifier: "B", Name: "X", Type: value.KindInt},
	)
	if _, err := s.Find("", "X"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("bare X should be ambiguous, got %v", err)
	}
	if i, err := s.Find("B", "X"); err != nil || i != 1 {
		t.Errorf("qualified B.X should resolve, got %d %v", i, err)
	}
}

func TestSchemaConcatRename(t *testing.T) {
	s := testSchema()
	r := s.Rename("G")
	if r.Columns[0].Qualifier != "G" || r.Columns[1].Qualifier != "G" {
		t.Error("Rename did not replace qualifiers")
	}
	if s.Columns[0].Qualifier != "F" {
		t.Error("Rename mutated the original")
	}
	c := s.Concat(r)
	if c.Len() != 4 {
		t.Errorf("Concat length = %d", c.Len())
	}
	if c.Columns[2].Qualifier != "G" {
		t.Error("Concat order wrong")
	}
}

func TestSchemaEqual(t *testing.T) {
	a, b := testSchema(), testSchema()
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(a.Rename("G")) {
		t.Error("renamed schema should differ")
	}
	if a.Equal(NewSchema(a.Columns[0])) {
		t.Error("different widths should differ")
	}
}

func TestSchemaString(t *testing.T) {
	got := testSchema().String()
	if got != "(F.A INT, F.B STRING)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTupleBasics(t *testing.T) {
	tp := Tuple{value.Int(1), value.Str("x")}
	cl := tp.Clone()
	cl[0] = value.Int(2)
	if tp[0].AsInt() != 1 {
		t.Error("Clone shares storage")
	}
	cc := tp.Concat(Tuple{value.Bool(true)})
	if len(cc) != 3 || !cc[2].AsBool() {
		t.Error("Concat wrong")
	}
	if !tp.Equal(Tuple{value.Int(1), value.Str("x")}) {
		t.Error("Equal false negative")
	}
	if tp.Equal(Tuple{value.Int(1)}) {
		t.Error("Equal across widths")
	}
	if tp.String() != "[1, x]" {
		t.Errorf("String() = %q", tp.String())
	}
}

func TestTupleHashKeyConsistency(t *testing.T) {
	f := func(a, b int64, s string) bool {
		t1 := Tuple{value.Int(a), value.Str(s), value.Int(b)}
		t2 := Tuple{value.Int(a), value.Str(s), value.Int(b)}
		return t1.Hash() == t2.Hash() && t1.Key() == t2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyDistinguishesKinds(t *testing.T) {
	a := Tuple{value.Int(1)}
	b := Tuple{value.Str("1")}
	if a.Key() == b.Key() {
		t.Error("Key must distinguish INT 1 from STRING \"1\"")
	}
	c := Tuple{value.Null}
	d := Tuple{value.Str("NULL")}
	if c.Key() == d.Key() {
		t.Error("Key must distinguish NULL from the string \"NULL\"")
	}
}

func TestRelationAppendPanicsOnWidth(t *testing.T) {
	r := New(testSchema())
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong width must panic")
		}
	}()
	r.Append(Tuple{value.Int(1)})
}

func TestRelationCloneIndependence(t *testing.T) {
	r := New(testSchema())
	r.Append(Tuple{value.Int(1), value.Str("x")})
	c := r.Clone()
	c.Rows[0][0] = value.Int(9)
	if r.Rows[0][0].AsInt() != 1 {
		t.Error("Clone shares row storage")
	}
}

func TestRelationRenameSharesRows(t *testing.T) {
	r := New(testSchema())
	r.Append(Tuple{value.Int(1), value.Str("x")})
	rn := r.Rename("Z")
	if rn.Schema.Columns[0].Qualifier != "Z" {
		t.Error("Rename qualifier wrong")
	}
	if rn.Len() != 1 {
		t.Error("Rename lost rows")
	}
}

func TestEqualBagOrderInsensitive(t *testing.T) {
	a, b := New(testSchema()), New(testSchema())
	a.Append(Tuple{value.Int(1), value.Str("x")})
	a.Append(Tuple{value.Int(2), value.Str("y")})
	b.Append(Tuple{value.Int(2), value.Str("y")})
	b.Append(Tuple{value.Int(1), value.Str("x")})
	if !a.EqualBag(b) {
		t.Error("EqualBag should ignore order")
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("Diff = %q, want empty", d)
	}
}

func TestEqualBagCountsDuplicates(t *testing.T) {
	a, b := New(testSchema()), New(testSchema())
	row := Tuple{value.Int(1), value.Str("x")}
	other := Tuple{value.Int(2), value.Str("y")}
	a.Append(row)
	a.Append(row.Clone())
	b.Append(row.Clone())
	b.Append(other)
	if a.EqualBag(b) {
		t.Error("EqualBag must respect multiplicities")
	}
	if a.Diff(b) == "" {
		t.Error("Diff should report the difference")
	}
}

func TestRelationStringTruncates(t *testing.T) {
	r := New(NewSchema(Column{Name: "N", Type: value.KindInt}))
	for i := 0; i < 60; i++ {
		r.Append(Tuple{value.Int(int64(i))})
	}
	s := r.String()
	if !strings.Contains(s, "10 more rows") {
		t.Errorf("expected truncation notice, got:\n%s", s)
	}
}

func TestSortByKeyDeterministic(t *testing.T) {
	r := New(NewSchema(Column{Name: "N", Type: value.KindInt}))
	for _, v := range []int64{3, 1, 2} {
		r.Append(Tuple{value.Int(v)})
	}
	r.SortByKey()
	got := []int64{r.Rows[0][0].AsInt(), r.Rows[1][0].AsInt(), r.Rows[2][0].AsInt()}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortByKey order = %v", got)
	}
}

func TestTupleApproxBytes(t *testing.T) {
	empty := Tuple{}
	if got := empty.ApproxBytes(); got != 24 {
		t.Fatalf("empty tuple: %d", got)
	}
	ints := Tuple{value.Int(1), value.Int(2)}
	if got := ints.ApproxBytes(); got != 24+2*40 {
		t.Fatalf("two ints: %d", got)
	}
	// String payload is charged on top of the fixed per-value size.
	s := Tuple{value.Str("abcdefgh")}
	if got, want := s.ApproxBytes(), int64(24+40+8); got != want {
		t.Fatalf("string tuple: got %d want %d", got, want)
	}
	if n := (Tuple{value.Null}).ApproxBytes(); n != 24+40 {
		t.Fatalf("null tuple: %d", n)
	}
}
