package gmdj

import (
	"context"
	"fmt"

	"github.com/olaplab/gmdj/internal/relation"
	"github.com/olaplab/gmdj/internal/sql"
	"github.com/olaplab/gmdj/internal/storage"
	"github.com/olaplab/gmdj/internal/value"
)

// Exec executes one SQL statement: SELECT queries return a Result;
// CREATE TABLE, INSERT INTO ... VALUES, and DROP TABLE return a nil
// Result on success. Queries run under the GMDJOpt strategy; use
// ExecStrategy to pick another.
func (db *DB) Exec(stmt string) (*Result, error) {
	return db.ExecStrategy(stmt, GMDJOpt)
}

// ExecContext is Exec honoring the caller's context for SELECT
// evaluation. DDL and INSERT are not governed: they are O(statement)
// catalog mutations, not query evaluations.
func (db *DB) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	return db.ExecStrategyContext(ctx, stmt, GMDJOpt)
}

// ExecStrategy is Exec with an explicit query strategy.
func (db *DB) ExecStrategy(stmt string, s Strategy) (*Result, error) {
	return db.ExecStrategyContext(context.Background(), stmt, s)
}

// ExecStrategyContext is ExecStrategy honoring the caller's context.
func (db *DB) ExecStrategyContext(ctx context.Context, stmt string, s Strategy) (*Result, error) {
	parsed, err := sql.ParseStatement(stmt)
	if err != nil {
		return nil, err
	}
	switch st := parsed.(type) {
	case *sql.SelectStmt:
		return db.QueryStrategyContext(ctx, stmt, s)
	case *sql.CreateTableStmt:
		if _, err := db.cat.Table(st.Name); err == nil {
			return nil, fmt.Errorf("gmdj: %w: %q", ErrTableExists, st.Name)
		}
		db.cat.Register(storage.NewTable(st.Name, relation.New(relation.NewSchema(st.Cols...))))
		return nil, nil
	case *sql.InsertStmt:
		t, err := db.cat.Table(st.Table)
		if err != nil {
			return nil, err
		}
		schema := t.Rel.Schema
		// Validate every row before mutating, so a failed INSERT is
		// atomic.
		checked := make([]relation.Tuple, 0, len(st.Rows))
		for ri, row := range st.Rows {
			if len(row) != schema.Len() {
				return nil, fmt.Errorf("gmdj: INSERT row %d has %d values, table %q has %d columns",
					ri+1, len(row), st.Table, schema.Len())
			}
			out := make(relation.Tuple, len(row))
			for i, v := range row {
				cv, err := coerce(v, schema.Columns[i].Type)
				if err != nil {
					return nil, fmt.Errorf("gmdj: INSERT row %d column %q: %w", ri+1, schema.Columns[i].Name, err)
				}
				out[i] = cv
			}
			checked = append(checked, out)
		}
		for _, row := range checked {
			t.Rel.Append(row)
		}
		if len(checked) > 0 {
			t.BumpVersion()
		}
		return nil, nil
	case *sql.DropTableStmt:
		if _, err := db.cat.Table(st.Name); err != nil {
			return nil, err
		}
		db.cat.Drop(st.Name)
		return nil, nil
	default:
		return nil, fmt.Errorf("gmdj: unsupported statement %T", parsed)
	}
}

// coerce checks a literal against a column type, widening INT to FLOAT.
func coerce(v value.Value, want value.Kind) (value.Value, error) {
	if v.IsNull() || want == value.KindNull || v.Kind() == want {
		return v, nil
	}
	if want == value.KindFloat && v.Kind() == value.KindInt {
		return value.Float(float64(v.AsInt())), nil
	}
	return value.Null, fmt.Errorf("cannot store %v into %v", v.Kind(), want)
}
