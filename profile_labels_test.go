package gmdj_test

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	gmdj "github.com/olaplab/gmdj"
	"github.com/olaplab/gmdj/internal/obs"
)

// TestWorkerPoolInheritsProfileLabels pins the attribution contract
// behind olap_tenant_cpu_seconds_total: the pprof labels the engine
// sets around query execution must survive the GMDJ worker-pool
// handoff onto the parallel detail-scan goroutines. The goroutine
// profile (debug=1) groups stacks with their labels, so a stanza
// holding both the tenant label and the parallel-scan frame proves the
// inheritance end to end. Run with -race to also pin the handoff's
// memory ordering.
func TestWorkerPoolInheritsProfileLabels(t *testing.T) {
	db := gmdj.OpenNetflowSample(20_000, gmdj.WithParallelism(4))
	defer db.Close()
	ctx := obs.WithTenant(obs.WithRequestID(context.Background(), "req-labels-1"), "acme")

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			if _, err := db.ExecStrategyContext(ctx, obsTestQuery, gmdj.GMDJOpt); err != nil {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	defer func() { stop.Store(true); <-done }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatalf("goroutine profile: %v", err)
		}
		for _, stanza := range strings.Split(buf.String(), "\n\n") {
			if strings.Contains(stanza, `"tenant":"acme"`) && strings.Contains(stanza, "runParallel") {
				return // a labeled worker goroutine, caught in the act
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no goroutine profile stanza carried the tenant label on a runParallel worker within 10s")
}
