#!/usr/bin/env bash
# storage_torture.sh — crash/recovery torture for the durable columnar
# store.
#
# Drives cmd/storetort through four gauntlets against one store
# directory:
#
#   1. kill -9 mid-churn, repeatedly: churn rewrites the deterministic
#      fig4/fig5 corpus round after round while the harness kills the
#      process at a random instant; every reopen must recover a
#      committed round whose tables are byte-identical to the
#      in-memory oracle, with the recovered round consistent with the
#      last "round=N gen=G" line churn managed to print (N or N+1 —
#      the transparent checkpoint can commit a round whose line never
#      made it out).
#   2. disk-fault matrix: churn runs to completion under injected
#      enospc / shortwrite / torn-rename faults at storage.write and
#      storage.manifest; failed checkpoints must leave the previous
#      generation committed, and the store must verify clean after.
#   3. quarantine: flip bytes in every on-disk segment of one table;
#      recovery must quarantine exactly that table (scans on it fail
#      with the typed segment-corrupt error) while every other table
#      still answers and both benchmark queries still match the
#      oracle; one churn round then heals it.
#   4. torn manifest: truncate the newest MANIFEST; recovery must skip
#      it and serve the previous generation.
#
# Verification runs under -race throughout. Env knobs: ROWS (corpus
# cardinality, default 4000), SEED, KILLS (phase-1 iterations, default
# 5), OUT_DIR.
set -euo pipefail
cd "$(dirname "$0")/.."

ROWS="${ROWS:-4000}"
SEED="${SEED:-1}"
KILLS="${KILLS:-5}"
OUT_DIR="${OUT_DIR:-out}"
DIR="${OUT_DIR}/torture-store"
CHURN_LOG="${OUT_DIR}/torture-churn.log"

mkdir -p bin "${OUT_DIR}"
rm -rf "${DIR}"
go build -o bin/storetort ./cmd/storetort
go build -race -o bin/storetort.race ./cmd/storetort
go build -o bin/olapd ./cmd/olapd
go build -o bin/promcheck ./cmd/promcheck

CHURN_PID=""
cleanup() {
  if [[ -n "${CHURN_PID}" ]] && kill -0 "${CHURN_PID}" 2>/dev/null; then
    kill -KILL "${CHURN_PID}" 2>/dev/null || true
  fi
}
trap cleanup EXIT

verify() { # $@ = extra storetort flags
  bin/storetort.race -dir "${DIR}" -rows "${ROWS}" -seed "${SEED}" verify "$@"
}

echo "== phase 0: initial load =="
bin/storetort -dir "${DIR}" -rows "${ROWS}" -seed "${SEED}" load
verify

echo "== phase 1: kill -9 mid-churn (${KILLS} rounds) =="
for i in $(seq 1 "${KILLS}"); do
  : > "${CHURN_LOG}"
  bin/storetort -dir "${DIR}" -rows "${ROWS}" -seed "${SEED}" churn \
    -rounds 100000 > "${CHURN_LOG}" 2>/dev/null &
  CHURN_PID=$!
  # Land the kill at a random instant inside the churn stream.
  sleep "0.$(( (RANDOM % 80) + 20 ))"
  sleep "$(( RANDOM % 2 ))"
  kill -KILL "${CHURN_PID}"
  wait "${CHURN_PID}" 2>/dev/null || true
  CHURN_PID=""

  LAST=$(sed -n 's/^round=\([0-9]*\) .*/\1/p' "${CHURN_LOG}" | tail -1)
  LAST="${LAST:-0}"
  OUT=$(verify)
  echo "${OUT}"
  GOT=$(sed -n 's/.*round=\([0-9]*\) .*/\1/p' <<< "${OUT}")
  if [[ "${GOT}" -lt "${LAST}" || "${GOT}" -gt $((LAST + 1)) ]]; then
    echo "storage_torture: kill ${i}: recovered round ${GOT}, but churn printed up to ${LAST}" >&2
    exit 1
  fi
done
echo "storage_torture: phase 1 clean (${KILLS} kill/recover cycles)"

echo "== phase 2: disk-fault matrix =="
# The @N rates are deterministic every-Nth firings; a churn round
# writes ~10 segments, so @23 fails roughly every other checkpoint at
# storage.write while letting the rest commit. enospc/shortwrite are
# detected at write time: the checkpoint fails, the previous
# generation stays committed, and a strict verify must pass. A torn
# write (lying fsync) is NOT detectable at write time — the commit
# goes through and recovery later quarantines the unreadable table —
# so those legs verify with -allow-quarantine and then heal with one
# clean churn round.
for FAULT in \
  "storage.write=enospc@23" \
  "storage.write=shortwrite@23" \
  "storage.manifest=enospc@4"; do
  echo "-- churn under GMDJ_FAULTS=${FAULT}"
  GMDJ_FAULTS="${FAULT}" bin/storetort -dir "${DIR}" -rows "${ROWS}" \
    -seed "${SEED}" churn -rounds 12 > "${CHURN_LOG}" 2>/dev/null
  COMMITTED=$(grep -c '^round=' "${CHURN_LOG}" || true)
  if [[ "${COMMITTED}" -eq 0 ]]; then
    echo "storage_torture: no round committed under ${FAULT} — rate too hot to measure recovery" >&2
    exit 1
  fi
  echo "   ${COMMITTED}/12 rounds committed"
  verify
done
for FAULT in \
  "storage.write=torn@23" \
  "storage.manifest=torn@4"; do
  echo "-- churn under GMDJ_FAULTS=${FAULT} (torn: quarantine tolerated, then healed)"
  GMDJ_FAULTS="${FAULT}" bin/storetort -dir "${DIR}" -rows "${ROWS}" \
    -seed "${SEED}" churn -rounds 12 > "${CHURN_LOG}" 2>/dev/null
  verify -allow-quarantine
  bin/storetort -dir "${DIR}" -rows "${ROWS}" -seed "${SEED}" churn -rounds 1 > /dev/null
  verify
done
echo "storage_torture: phase 2 clean (failed checkpoints never corrupted the committed generation)"

echo "== phase 3: segment corruption quarantines one table =="
CORRUPTED=0
for f in "${DIR}"/A-*.seg; do
  [[ -e "$f" ]] || continue
  printf '\xde\xad\xbe\xef' | dd of="$f" bs=1 seek=64 conv=notrunc 2>/dev/null
  CORRUPTED=$((CORRUPTED + 1))
done
if [[ "${CORRUPTED}" -eq 0 ]]; then
  echo "storage_torture: no A-*.seg files to corrupt" >&2
  exit 1
fi
verify -expect-quarantine A
# A clean verify must now FAIL: the quarantine is real, not cosmetic.
if verify 2>/dev/null; then
  echo "storage_torture: verify ignored a corrupt segment" >&2
  exit 1
fi
# One churn round rewrites every table, healing the quarantine.
bin/storetort -dir "${DIR}" -rows "${ROWS}" -seed "${SEED}" churn -rounds 1
verify
echo "storage_torture: phase 3 clean (quarantine isolated the corrupt table, churn healed it)"

echo "== phase 4: torn manifest falls back one generation =="
# One more clean round first: the fallback generation must not be the
# one phase 3 vandalized.
bin/storetort -dir "${DIR}" -rows "${ROWS}" -seed "${SEED}" churn -rounds 1 > /dev/null
NEWEST=$(ls "${DIR}"/MANIFEST-* | sort | tail -1)
truncate -s 10 "${NEWEST}"
OUT=$(verify)
echo "${OUT}"
if [[ "${OUT}" != *"skipped_manifests=1"* ]]; then
  echo "storage_torture: expected exactly one skipped manifest, got: ${OUT}" >&2
  exit 1
fi

echo "== phase 5: olapd serves the tortured store and exports olap_storage_* =="
PORT="${PORT:-18099}"
TARGET="http://127.0.0.1:${PORT}"
bin/olapd -addr "127.0.0.1:${PORT}" -data none -data-dir "${DIR}" &
OLAPD_PID=$!
trap 'kill -KILL "${OLAPD_PID}" 2>/dev/null || true; cleanup' EXIT
for _ in $(seq 1 100); do
  curl -fsS "${TARGET}/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "${OLAPD_PID}" 2>/dev/null; then
    echo "storage_torture: olapd died opening the tortured store" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "${TARGET}/metrics" > "${OUT_DIR}/torture_metrics.prom"
kill -TERM "${OLAPD_PID}" 2>/dev/null || true
wait "${OLAPD_PID}" 2>/dev/null || true
OLAPD_PID=""
bin/promcheck -storage \
  -require "olap_storage_generation,olap_storage_tables,olap_storage_quarantined_tables,olap_storage_segments_written_total,olap_storage_segments_recovered_total,olap_storage_segments_quarantined_total,olap_storage_checkpoints_total,olap_storage_recoveries_total,olap_storage_manifests_skipped_total,olap_storage_bytes_written_total,olap_storage_bytes_read_total" \
  "${OUT_DIR}/torture_metrics.prom"
echo "storage_torture: phase 5 clean (recovered store served with full olap_storage_* exposition)"
echo "storage_torture: PASS"
