#!/usr/bin/env bash
# serve_storm.sh — end-to-end chaos gauntlet for the serving layer.
#
# Boots olapd with serve-site fault injection and the goroutine leak
# check, runs the cancellation-storm scenario through loadgen, and then
# repeats the storm with a SIGTERM landing mid-flight to exercise the
# drain state machine. Fails if:
#
#   - loadgen observes any non-typed outcome or an SLO burn violation
#     (phase 1),
#   - the /metrics exposition scraped mid-storm or after quiescing is
#     invalid, fails per-tenant reconciliation, or exceeds the tenant
#     label cap (scripts/check_metrics.sh),
#   - a CPU profile sampled mid-storm fails to attribute samples to
#     tenants/strategies via pprof labels (cmd/bundlecheck file mode),
#   - the forced SLO-burn trigger (-incident-burn 0.05, under the
#     storm's ~0.16 burn) fails to produce exactly one incident bundle,
#     or the bundle fails validation (cmd/bundlecheck),
#   - olapd exits non-zero after drain (either phase), including exit
#     12 from the leak check,
#   - drain overruns its budget.
#
# Artifacts land under out/ (gitignored): BENCH_serve_storm.json
# (per-step latency percentiles), serve_storm_result.json,
# serve_slowlog.json, metrics_midstorm.prom, metrics_quiesced.prom,
# cpu_midstorm.pprof, the profile ring + incident bundles under
# out/profiles/, and olap-trace.json (server spans + operator events;
# load in https://ui.perfetto.dev).
#
# Env knobs: PORT (default 18080), SCALE (dataset scale, default 0.2),
# OUT_DIR, BENCH_OUT, FAULTS (GMDJ_FAULTS spec for olapd).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
SCALE="${SCALE:-0.2}"
OUT_DIR="${OUT_DIR:-out}"
BENCH_OUT="${BENCH_OUT:-${OUT_DIR}/BENCH_serve_storm.json}"
FAULTS="${FAULTS:-serve.accept=error@25,serve.write=error@50,serve.cancel=error@3}"
TARGET="http://127.0.0.1:${PORT}"
PROFILE_DIR="${OUT_DIR}/profiles"
OLAPD_ARGS=(-addr ":${PORT}" -data netflow -scale "${SCALE}" -workers 2
  -timeout 5s -max-timeout 30s -drain-timeout 8s -admin -leak-check
  -slow-ms 250 -slowlog "${OUT_DIR}/serve_slowlog.json"
  -slo "default:avail=0.75"
  -quota "inflight=128,admission=2s"
  -tenants "starved:inflight=2,admission=100ms"
  -profile-dir "${PROFILE_DIR}" -profile-interval 3s -profile-cpu 1s
  -incident-burn 0.05 -incident-min-interval 15m)

mkdir -p bin "${OUT_DIR}"
rm -rf "${PROFILE_DIR}"
go build -o bin/olapd ./cmd/olapd
go build -o bin/loadgen ./cmd/loadgen
go build -o bin/promcheck ./cmd/promcheck
go build -o bin/bundlecheck ./cmd/bundlecheck

OLAPD_PID=""
cleanup() {
  if [[ -n "${OLAPD_PID}" ]] && kill -0 "${OLAPD_PID}" 2>/dev/null; then
    kill -KILL "${OLAPD_PID}" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_olapd() {
  GMDJ_FAULTS="${FAULTS}" bin/olapd "${OLAPD_ARGS[@]}" &
  OLAPD_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "${TARGET}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "${OLAPD_PID}" 2>/dev/null; then
      echo "serve_storm: olapd died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "serve_storm: olapd never became healthy" >&2
  return 1
}

stop_olapd() { # $1 = label
  kill -TERM "${OLAPD_PID}"
  local waited=0
  while kill -0 "${OLAPD_PID}" 2>/dev/null; do
    sleep 0.25
    waited=$((waited + 1))
    if [[ ${waited} -ge 80 ]]; then # 20s >> drain budget 8s + grace
      echo "serve_storm: ${1}: olapd did not exit within 20s of SIGTERM" >&2
      kill -KILL "${OLAPD_PID}" 2>/dev/null || true
      return 1
    fi
  done
  local rc=0
  wait "${OLAPD_PID}" || rc=$?
  OLAPD_PID=""
  if [[ ${rc} -ne 0 ]]; then
    echo "serve_storm: ${1}: olapd exited ${rc} (12 = goroutine leak)" >&2
    return 1
  fi
  echo "serve_storm: ${1}: olapd drained and exited 0"
}

echo "== phase 1: cancellation storm under fault injection =="
start_olapd
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
bin/loadgen -scenario scenarios/cancel_storm.yaml -target "${TARGET}" \
  -bench "${BENCH_OUT}" -commit "${COMMIT}" > "${OUT_DIR}/serve_storm_result.json" &
LOADGEN_PID=$!

# Scrape /metrics while the storm is at full boil: the exposition must
# stay parseable and the funnel counters must reconcile (requests >=
# responses; the gap is the in-flight count) even under concurrent
# mutation.
sleep 8
curl -fsS "${TARGET}/metrics" > "${OUT_DIR}/metrics_midstorm.prom"
bin/promcheck -reconcile -storage -max-tenant-labels 33 \
  -require "olap_requests_total,olap_responses_total,olap_request_duration_seconds,olap_slo_error_budget_burn,gmdj_engine_events_total" \
  "${OUT_DIR}/metrics_midstorm.prom"
echo "serve_storm: mid-storm /metrics scrape valid"

# Sample a CPU profile while the storm is at full boil and assert the
# per-tenant attribution contract: samples must carry the tenant and
# strategy pprof labels the serving layer stamps on every query. The
# endpoint 500s when the cadence profiler holds the (process-global)
# CPU profiler, so retry across its window.
PROFILE_OK=0
for _ in $(seq 1 10); do
  if curl -fsS "${TARGET}/debug/pprof/profile?seconds=4" > "${OUT_DIR}/cpu_midstorm.pprof" 2>/dev/null; then
    PROFILE_OK=1
    break
  fi
  sleep 1
done
if [[ ${PROFILE_OK} -ne 1 ]]; then
  echo "serve_storm: could not sample /debug/pprof/profile mid-storm" >&2
  exit 1
fi
bin/bundlecheck -labels "tenant,strategy" "${OUT_DIR}/cpu_midstorm.pprof"
echo "serve_storm: mid-storm CPU profile attributes samples by tenant/strategy"

LOADGEN_RC=0
wait "${LOADGEN_PID}" || LOADGEN_RC=$?
if [[ ${LOADGEN_RC} -ne 0 ]]; then
  echo "serve_storm: loadgen exited ${LOADGEN_RC} (1 = non-typed outcomes, 4 = SLO burn violation)" >&2
  exit 1
fi
echo "serve_storm: phase 1 clean (results in ${OUT_DIR}/serve_storm_result.json, bench in ${BENCH_OUT})"

# Quiesced scrape: no traffic in flight, so every tenant's requests
# counter must exactly equal its summed responses.
sleep 1
curl -fsS "${TARGET}/metrics" > "${OUT_DIR}/metrics_quiesced.prom"
bin/promcheck -reconcile -quiesced -storage -max-tenant-labels 33 "${OUT_DIR}/metrics_quiesced.prom"
echo "serve_storm: quiesced /metrics reconciles exactly"

# The trace ring holds the storm's tail: serving-phase spans (request,
# tenant-gate, execute, serialize) tagged rid=.../tenant=... next to
# the engine's plan/operator events, one Perfetto timeline.
curl -fsS "${TARGET}/debug/olap/trace" > "${OUT_DIR}/olap-trace.json"
python3 -c "import json,sys; json.load(open('${OUT_DIR}/olap-trace.json'))" 2>/dev/null \
  || { echo "serve_storm: downloaded trace is not valid JSON" >&2; exit 1; }
echo "serve_storm: trace downloaded ($(wc -c < "${OUT_DIR}/olap-trace.json") bytes)"

# The storm's failure rate (~4% injected faults against a 25% error
# budget) holds the SLO burn near 0.16 — under loadgen's violation
# threshold of 1.0, but past the forced -incident-burn 0.05 trigger.
# The flight recorder must have caught it: exactly one bundle (the
# 15m rate limit suppresses the storm of repeat firings), complete and
# checksummed, with the trace, slowlog, metrics scrape, and profiles
# inside.
BUNDLES=("${PROFILE_DIR}/incidents"/incident-*)
if [[ ${#BUNDLES[@]} -ne 1 || ! -d "${BUNDLES[0]}" ]]; then
  echo "serve_storm: expected exactly one incident bundle, found: ${BUNDLES[*]}" >&2
  exit 1
fi
bin/bundlecheck \
  -require "goroutines.txt,metrics.prom,trace.json,slowlog.json,config.json,heap.pprof,goroutine.pprof,mutex.pprof,cpu.pprof" \
  -cpu-labels "tenant,strategy" \
  "${BUNDLES[0]}"
echo "serve_storm: SLO-burn incident produced one validated bundle (${BUNDLES[0]})"

stop_olapd "phase 1 shutdown"

echo "== phase 2: SIGTERM mid-storm =="
start_olapd
bin/loadgen -scenario scenarios/cancel_storm.yaml -target "${TARGET}" -q \
  > /dev/null 2>&1 &
LOADGEN_PID=$!
sleep 6 # land the signal inside the 15s storm step
# loadgen keeps hammering while the server drains; its outcomes after
# the listener closes are transport errors by design, so only olapd's
# exit code is asserted here.
stop_olapd "mid-storm drain" || { kill "${LOADGEN_PID}" 2>/dev/null || true; exit 1; }
kill "${LOADGEN_PID}" 2>/dev/null || true
wait "${LOADGEN_PID}" 2>/dev/null || true

echo "serve_storm: PASS"
