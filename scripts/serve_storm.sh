#!/usr/bin/env bash
# serve_storm.sh — end-to-end chaos gauntlet for the serving layer.
#
# Boots olapd with serve-site fault injection and the goroutine leak
# check, runs the cancellation-storm scenario through loadgen, and then
# repeats the storm with a SIGTERM landing mid-flight to exercise the
# drain state machine. Fails if:
#
#   - loadgen observes any non-typed outcome (phase 1),
#   - olapd exits non-zero after drain (either phase), including exit
#     12 from the leak check,
#   - drain overruns its budget.
#
# Artifacts: BENCH_serve.json (per-step latency percentiles) and
# serve_slowlog.json (the server's slow-query log).
#
# Env knobs: PORT (default 18080), SCALE (dataset scale, default 0.2),
# BENCH_OUT, FAULTS (GMDJ_FAULTS spec for olapd).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
SCALE="${SCALE:-0.2}"
BENCH_OUT="${BENCH_OUT:-BENCH_serve.json}"
FAULTS="${FAULTS:-serve.accept=error@25,serve.write=error@50,serve.cancel=error@3}"
TARGET="http://127.0.0.1:${PORT}"
OLAPD_ARGS=(-addr ":${PORT}" -data netflow -scale "${SCALE}" -workers 2
  -timeout 5s -max-timeout 30s -drain-timeout 8s -admin -leak-check
  -slow-ms 250 -slowlog serve_slowlog.json
  -quota "inflight=128,admission=2s"
  -tenants "starved:inflight=2,admission=100ms")

mkdir -p bin
go build -o bin/olapd ./cmd/olapd
go build -o bin/loadgen ./cmd/loadgen

OLAPD_PID=""
cleanup() {
  if [[ -n "${OLAPD_PID}" ]] && kill -0 "${OLAPD_PID}" 2>/dev/null; then
    kill -KILL "${OLAPD_PID}" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_olapd() {
  GMDJ_FAULTS="${FAULTS}" bin/olapd "${OLAPD_ARGS[@]}" &
  OLAPD_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "${TARGET}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "${OLAPD_PID}" 2>/dev/null; then
      echo "serve_storm: olapd died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "serve_storm: olapd never became healthy" >&2
  return 1
}

stop_olapd() { # $1 = label
  kill -TERM "${OLAPD_PID}"
  local waited=0
  while kill -0 "${OLAPD_PID}" 2>/dev/null; do
    sleep 0.25
    waited=$((waited + 1))
    if [[ ${waited} -ge 80 ]]; then # 20s >> drain budget 8s + grace
      echo "serve_storm: ${1}: olapd did not exit within 20s of SIGTERM" >&2
      kill -KILL "${OLAPD_PID}" 2>/dev/null || true
      return 1
    fi
  done
  local rc=0
  wait "${OLAPD_PID}" || rc=$?
  OLAPD_PID=""
  if [[ ${rc} -ne 0 ]]; then
    echo "serve_storm: ${1}: olapd exited ${rc} (12 = goroutine leak)" >&2
    return 1
  fi
  echo "serve_storm: ${1}: olapd drained and exited 0"
}

echo "== phase 1: cancellation storm under fault injection =="
start_olapd
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
bin/loadgen -scenario scenarios/cancel_storm.yaml -target "${TARGET}" \
  -bench "${BENCH_OUT}" -commit "${COMMIT}" > serve_storm_result.json
echo "serve_storm: phase 1 clean (results in serve_storm_result.json, bench in ${BENCH_OUT})"
stop_olapd "phase 1 shutdown"

echo "== phase 2: SIGTERM mid-storm =="
start_olapd
bin/loadgen -scenario scenarios/cancel_storm.yaml -target "${TARGET}" -q \
  > /dev/null 2>&1 &
LOADGEN_PID=$!
sleep 6 # land the signal inside the 15s storm step
# loadgen keeps hammering while the server drains; its outcomes after
# the listener closes are transport errors by design, so only olapd's
# exit code is asserted here.
stop_olapd "mid-storm drain" || { kill "${LOADGEN_PID}" 2>/dev/null || true; exit 1; }
kill "${LOADGEN_PID}" 2>/dev/null || true
wait "${LOADGEN_PID}" 2>/dev/null || true

echo "serve_storm: PASS"
