#!/usr/bin/env bash
# Guards the "observability is free when nobody is looking" invariant:
# runs the Figure 4 gmdj-opt benchmark with stats collection on
# (GMDJ_OBS=1), with a full workload observer attached — histograms,
# live-query registry, slow-query log — (GMDJ_OBS=2), with the
# continuous profiler live — pprof query labels on every iteration
# plus the background cadence CPU sampler — (GMDJ_PROF=1), and off,
# takes the minimum ns/op of several runs each, and fails if any
# enabled mode is more than 5% slower than the plain run. Because the
# disabled path is a strict subset of the enabled one (every hook
# short-circuits on a nil collector/observer, and an unlabeled query
# never touches pprof), bounding the enabled overhead also bounds any
# disabled-path regression.
#
# Usage: scripts/obs_overhead.sh [runs]
set -euo pipefail
cd "$(dirname "$0")/.."

runs="${1:-3}"
bench='^BenchmarkFig4$/^gmdj-opt$/^2500$'

min_nsop() { # $1 = GMDJ_OBS value, $2 = GMDJ_PROF value
  local env_obs="$1" env_prof="${2:-0}" best="" out nsop
  for _ in $(seq "$runs"); do
    out=$(GMDJ_OBS="$env_obs" GMDJ_PROF="$env_prof" go test -run '^$' -bench "$bench" -benchtime 20x .)
    nsop=$(echo "$out" | awk '/^BenchmarkFig4/ {print $3; exit}')
    if [ -z "$nsop" ]; then
      echo "obs_overhead: no benchmark output:" >&2
      echo "$out" >&2
      exit 1
    fi
    if [ -z "$best" ] || awk -v a="$nsop" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$nsop"
    fi
  done
  echo "$best"
}

plain=$(min_nsop 0)
observed=$(min_nsop 1)
full=$(min_nsop 2)
profiled=$(min_nsop 0 1)
echo "obs_overhead: plain=${plain} ns/op observed=${observed} ns/op observer=${full} ns/op profiled=${profiled} ns/op"

# Allow 5% relative or 200µs absolute slack, whichever is larger, so
# sub-millisecond cells don't flake on scheduler noise.
check() {
  awk -v p="$plain" -v o="$1" -v mode="$2" 'BEGIN {
    slack = p * 0.05; if (slack < 200000) slack = 200000
    if (o > p + slack) {
      printf "obs_overhead: FAIL: %s run %.0f ns/op exceeds plain %.0f ns/op by more than 5%% (+%.0f ns allowed)\n", mode, o, p, slack
      exit 1
    }
    printf "obs_overhead: %s OK (%+.1f%%)\n", mode, (o - p) / p * 100
  }'
}
check "$observed" "stats-collection"
check "$full" "histogram+registry"
check "$profiled" "profiler-on"
