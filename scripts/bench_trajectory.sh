#!/usr/bin/env bash
# Bench-trajectory pipeline: runs cmd/benchfig in trajectory mode and
# compares the fresh run against the committed BENCH_<fig>.json
# baselines at the repo root, failing (exit 3 from benchfig) when any
# matching cell is more than 15% (+2ms absolute slack) slower.
#
# Usage:
#   scripts/bench_trajectory.sh               # compare fig4, fig5, prepared, memory
#   scripts/bench_trajectory.sh fig4          # compare one figure
#   scripts/bench_trajectory.sh -update       # re-record all baselines
#   scripts/bench_trajectory.sh -update fig4  # re-record one baseline
#
# Environment overrides:
#   BENCH_TRAJECTORY_SCALE      row-count multiplier (default 0.0625)
#   BENCH_TRAJECTORY_REPEAT     measurements per cell (default 3)
#   BENCH_TRAJECTORY_TOLERANCE  allowed relative slowdown (default 0.15)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${BENCH_TRAJECTORY_SCALE:-0.0625}"
repeat="${BENCH_TRAJECTORY_REPEAT:-3}"
tolerance="${BENCH_TRAJECTORY_TOLERANCE:-0.15}"

update=0
if [ "${1:-}" = "-update" ]; then
  update=1
  shift
fi
figs=("$@")
if [ ${#figs[@]} -eq 0 ]; then
  figs=(fig4 fig5 prepared memory)
fi

bin=$(mktemp -d)/benchfig
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/benchfig

status=0
for fig in "${figs[@]}"; do
  baseline="BENCH_${fig}.json"
  if [ "$update" = 1 ] || [ ! -f "$baseline" ]; then
    echo "bench_trajectory: recording baseline $baseline"
    "$bin" -fig "$fig" -scale "$scale" -repeat "$repeat" -json "$baseline"
    continue
  fi
  echo "bench_trajectory: comparing $fig against $baseline"
  if ! "$bin" -fig "$fig" -scale "$scale" -repeat "$repeat" -json "BENCH_${fig}.current.json" \
      -baseline "$baseline" -tolerance "$tolerance"; then
    status=3
  fi
done
exit "$status"
