#!/usr/bin/env bash
# Bench-trajectory pipeline: runs cmd/benchfig in trajectory mode and
# compares the fresh run against the committed BENCH_<fig>.json
# baselines at the repo root, failing (exit 3) when any matching cell
# regresses beyond tolerance.
#
# The "serve" figure is special: instead of benchfig it boots a quiet
# olapd (no faults), drives scenarios/bench_serve.yaml through loadgen,
# and compares the per-step p50/p99/mean cells against BENCH_serve.json
# using loadgen's own -baseline/-tolerance flags — the same exit-3
# contract, with a serve-specific tolerance because HTTP-path latencies
# ride the scheduler and the network stack.
#
# Usage:
#   scripts/bench_trajectory.sh               # compare fig4, fig5, prepared, memory, parallel, serve
#   scripts/bench_trajectory.sh fig4          # compare one figure
#   scripts/bench_trajectory.sh -update       # re-record all baselines
#   scripts/bench_trajectory.sh -update serve # re-record one baseline
#
# Environment overrides:
#   BENCH_TRAJECTORY_SCALE           row-count multiplier (default 0.0625)
#   BENCH_TRAJECTORY_REPEAT          measurements per cell (default 3)
#   BENCH_TRAJECTORY_TOLERANCE       allowed relative slowdown (default 0.15)
#   BENCH_TRAJECTORY_SERVE_TOLERANCE serve-figure tolerance (default 0.75)
#   PORT                             serve-figure olapd port (default 18081)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${BENCH_TRAJECTORY_SCALE:-0.0625}"
repeat="${BENCH_TRAJECTORY_REPEAT:-3}"
tolerance="${BENCH_TRAJECTORY_TOLERANCE:-0.15}"
serve_tolerance="${BENCH_TRAJECTORY_SERVE_TOLERANCE:-0.75}"
PORT="${PORT:-18081}"

update=0
if [ "${1:-}" = "-update" ]; then
  update=1
  shift
fi
figs=("$@")
if [ ${#figs[@]} -eq 0 ]; then
  figs=(fig4 fig5 prepared memory parallel serve)
fi

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"; if [ -n "${OLAPD_PID:-}" ] && kill -0 "$OLAPD_PID" 2>/dev/null; then kill -KILL "$OLAPD_PID" || true; fi' EXIT
bin="$bindir/benchfig"

# Committed baselines stay at the repo root; fresh-run measurements go
# under gitignored out/ so a compare run never dirties the tree.
mkdir -p out

serve_fig() { # $1 = 1 to re-record the baseline
  local target="http://127.0.0.1:${PORT}"
  go build -o "$bindir/olapd" ./cmd/olapd
  go build -o "$bindir/loadgen" ./cmd/loadgen
  "$bindir/olapd" -addr ":${PORT}" -data netflow -scale 0.2 -workers 2 \
    -timeout 10s -log-level off &
  OLAPD_PID=$!
  for _ in $(seq 1 100); do
    curl -fsS "${target}/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$OLAPD_PID" 2>/dev/null; then
      echo "bench_trajectory: olapd died during startup" >&2
      return 1
    fi
    sleep 0.1
  done
  local commit rc=0
  commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  if [ "$1" = 1 ]; then
    "$bindir/loadgen" -scenario scenarios/bench_serve.yaml -target "$target" -q \
      -bench BENCH_serve.json -commit "$commit" > /dev/null || rc=$?
  else
    "$bindir/loadgen" -scenario scenarios/bench_serve.yaml -target "$target" -q \
      -bench out/BENCH_serve.current.json -commit "$commit" \
      -baseline BENCH_serve.json -tolerance "$serve_tolerance" > /dev/null || rc=$?
  fi
  kill -TERM "$OLAPD_PID" 2>/dev/null || true
  wait "$OLAPD_PID" 2>/dev/null || true
  OLAPD_PID=""
  return "$rc"
}

status=0
for fig in "${figs[@]}"; do
  baseline="BENCH_${fig}.json"
  if [ "$fig" = serve ]; then
    if [ "$update" = 1 ] || [ ! -f "$baseline" ]; then
      echo "bench_trajectory: recording baseline $baseline (serve figure)"
      serve_fig 1
    else
      echo "bench_trajectory: comparing serve against $baseline"
      rc=0
      serve_fig 0 || rc=$?
      if [ "$rc" -ne 0 ]; then
        status=3
      fi
    fi
    continue
  fi
  if [ ! -x "$bin" ]; then
    go build -o "$bin" ./cmd/benchfig
  fi
  if [ "$update" = 1 ] || [ ! -f "$baseline" ]; then
    echo "bench_trajectory: recording baseline $baseline"
    "$bin" -fig "$fig" -scale "$scale" -repeat "$repeat" -json "$baseline"
    continue
  fi
  echo "bench_trajectory: comparing $fig against $baseline"
  if ! "$bin" -fig "$fig" -scale "$scale" -repeat "$repeat" -json "out/BENCH_${fig}.current.json" \
      -baseline "$baseline" -tolerance "$tolerance"; then
    status=3
  fi
done
exit "$status"
