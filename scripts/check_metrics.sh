#!/usr/bin/env bash
# check_metrics.sh — scrape (or read) a Prometheus exposition and
# validate it with promcheck: parseable text format, required serving
# and engine families declared, per-tenant funnel counters reconciling,
# tenant label cardinality under the cap.
#
# Usage:
#   scripts/check_metrics.sh http://127.0.0.1:18080/metrics   # scrape
#   scripts/check_metrics.sh out/metrics_midstorm.prom        # file
#
# Env knobs:
#   QUIESCED=1        require exact requests == responses (idle server)
#   MAX_TENANTS=n     tenant-label cardinality cap (default 33: the
#                     server default of 32 plus the _other fold-over)
#   REQUIRE=fams      comma-separated families that must be present
set -euo pipefail
cd "$(dirname "$0")/.."

SRC="${1:?usage: check_metrics.sh <url-or-file>}"
MAX_TENANTS="${MAX_TENANTS:-33}"
REQUIRE="${REQUIRE:-olap_requests_total,olap_responses_total,olap_request_duration_seconds,olap_tenant_admitted_total,gmdj_engine_events_total,gmdj_spill_bytes_written_total}"

mkdir -p bin
go build -o bin/promcheck ./cmd/promcheck

args=(-reconcile -max-tenant-labels "${MAX_TENANTS}" -require "${REQUIRE}")
if [[ "${QUIESCED:-0}" = "1" ]]; then
  args+=(-quiesced)
fi

if [[ "${SRC}" == http://* || "${SRC}" == https://* ]]; then
  curl -fsS "${SRC}" | bin/promcheck "${args[@]}"
else
  bin/promcheck "${args[@]}" "${SRC}"
fi
