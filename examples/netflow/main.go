// Netflow: the paper's motivating IP-flow analysis (Examples 2.2 and
// 2.3) on a generated 50k-row flow table.
//
// Query A (Example 2.2): for each hour in which there exists traffic
// to 167.167.167.0, what fraction of the traffic is web traffic?
//
// Query B (Example 2.3): per source IP with no flows to one
// destination, some flow to a second, and no flows to a third — total
// traffic sent. Three subqueries over the same fact table; the
// optimized GMDJ strategy answers all of them in a single scan.
package main

import (
	"fmt"
	"log"
	"time"

	gmdj "github.com/olaplab/gmdj"
)

func main() {
	db := gmdj.OpenNetflowSample(600)

	// Step 1 (the subquery part of Example 2.2): hours in which there
	// exists traffic to 167.167.167.0 — a correlated EXISTS over the
	// dimension table, which the GMDJ strategy answers in one scan of
	// Flow.
	hoursQ := `
	  SELECT h.HourDsc, h.StartInterval, h.EndInterval FROM Hours h
	  WHERE EXISTS (SELECT * FROM Flow fi
	                WHERE fi.DestIP = '167.167.167.0'
	                  AND fi.StartTime >= h.StartInterval
	                  AND fi.StartTime < h.EndInterval)`
	hours, err := db.Query(hoursQ)
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: web bytes per hour (plain grouped aggregation).
	webQ := `
	  SELECT h.HourDsc, SUM(f.NumBytes) AS webBytes
	  FROM Hours h, Flow f
	  WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	    AND f.Protocol = 'HTTP'
	  GROUP BY h.HourDsc`
	web, err := db.Query(webQ)
	if err != nil {
		log.Fatal(err)
	}
	webByHour := map[any]any{}
	for _, row := range web.Rows {
		webByHour[row[0]] = row[1]
	}

	fmt.Printf("Example 2.2 — web bytes for the %d hours with traffic to 167.167.167.0:\n", hours.Len())
	for i, row := range hours.Rows {
		if i == 5 {
			fmt.Printf("  ... (%d more hours)\n", hours.Len()-5)
			break
		}
		fmt.Printf("  hour %2v: %v bytes\n", row[0], webByHour[row[0]])
	}

	queryB := `
	  SELECT u.IPAddress FROM User u
	  WHERE NOT EXISTS (SELECT * FROM Flow f1
	                    WHERE f1.SourceIP = u.IPAddress AND f1.DestIP = '167.167.167.0')
	    AND EXISTS     (SELECT * FROM Flow f2
	                    WHERE f2.SourceIP = u.IPAddress AND f2.DestIP = '168.168.168.0')
	    AND NOT EXISTS (SELECT * FROM Flow f3
	                    WHERE f3.SourceIP = u.IPAddress AND f3.DestIP = '169.169.169.0')`

	fmt.Println("\nExample 2.3 — qualifying source IPs (3 subqueries, 1 coalesced scan under gmdj-opt):")
	for _, s := range []gmdj.Strategy{gmdj.Native, gmdj.GMDJ, gmdj.GMDJOpt} {
		start := time.Now()
		res, err := db.QueryStrategy(queryB, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v: %3d qualifying IPs in %v\n", s, res.Len(), time.Since(start).Round(time.Microsecond))
	}
}
