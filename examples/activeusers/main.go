// Activeusers: the paper's Example 3.3 — the relational-division query
// "which user accounts have been the source of traffic in every hour?"
// expressed as a double existential negation. Its innermost predicate
// references the outermost table (a non-neighboring correlation), the
// hardest case for every unnesting algorithm; the rewriter repairs it
// with a single base-table push-down (Theorem 3.3/3.4).
package main

import (
	"fmt"
	"log"
	"time"

	gmdj "github.com/olaplab/gmdj"
)

func main() {
	db := gmdj.OpenNetflowSample(5_000)

	query := `
	  SELECT u.Name, u.IPAddress FROM User u
	  WHERE NOT EXISTS (
	    SELECT * FROM Hours h
	    WHERE NOT EXISTS (
	      SELECT * FROM Flow f
	      WHERE f.StartTime >= h.StartInterval
	        AND f.StartTime <  h.EndInterval
	        AND f.SourceIP = u.IPAddress))`

	fmt.Println("Users active in every hour of the day:")
	for _, s := range []gmdj.Strategy{gmdj.Native, gmdj.Unnest, gmdj.GMDJ, gmdj.GMDJOpt} {
		start := time.Now()
		res, err := db.QueryStrategy(query, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v: %3d users in %8v\n", s, res.Len(), time.Since(start).Round(time.Microsecond))
	}

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	for i, row := range res.Rows {
		if i == 10 {
			fmt.Printf("  ... (%d more)\n", res.Len()-10)
			break
		}
		fmt.Printf("  %v (%v)\n", row[0], row[1])
	}

	plan, err := db.Explain(query, gmdj.GMDJ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGMDJ plan (note the single push-down join):")
	fmt.Print(plan)
}
