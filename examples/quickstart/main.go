// Quickstart: create tables, insert the paper's Figure 1 data, and run
// Example 2.1 — "on an hourly basis, what fraction of the traffic is
// due to web traffic?" — comparing all four evaluation strategies.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	gmdj "github.com/olaplab/gmdj"
)

func main() {
	db := gmdj.Open()

	// The paper's Figure 1 input tables.
	db.MustCreateTable("Hours",
		gmdj.Col("HourDsc", gmdj.Int),
		gmdj.Col("StartInterval", gmdj.Int),
		gmdj.Col("EndInterval", gmdj.Int))
	db.MustInsert("Hours",
		[]any{1, 0, 60},
		[]any{2, 61, 120},
		[]any{3, 121, 180})

	db.MustCreateTable("Flow",
		gmdj.Col("StartTime", gmdj.Int),
		gmdj.Col("Protocol", gmdj.String),
		gmdj.Col("NumBytes", gmdj.Int))
	db.MustInsert("Flow",
		[]any{43, "HTTP", 12},
		[]any{86, "HTTP", 36},
		[]any{99, "FTP", 48},
		[]any{132, "HTTP", 24},
		[]any{156, "HTTP", 24},
		[]any{161, "FTP", 48})

	// Example 2.1 expressed with subqueries: per hour, HTTP bytes and
	// total bytes. (The engine's rewriter turns the correlated
	// aggregate subqueries into a single coalesced GMDJ — one scan of
	// Flow — under the GMDJOpt strategy.)
	query := `
	  SELECT h.HourDsc,
	         SUM(f.NumBytes) AS total
	  FROM Hours h, Flow f
	  WHERE f.StartTime >= h.StartInterval AND f.StartTime < h.EndInterval
	  GROUP BY h.HourDsc`

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Total bytes per hour:")
	for _, row := range res.Rows {
		fmt.Printf("  hour %v: %v bytes\n", row[0], row[1])
	}

	// The paper's headline construct: hours in which some flow exceeds
	// the hour's average — a correlated aggregate subquery.
	subquery := `
	  SELECT h.HourDsc FROM Hours h
	  WHERE 30 < (SELECT AVG(f.NumBytes) FROM Flow f
	              WHERE f.StartTime >= h.StartInterval
	                AND f.StartTime < h.EndInterval)`

	fmt.Println("\nHours with average flow size above 30 bytes:")
	for _, s := range []gmdj.Strategy{gmdj.Native, gmdj.Unnest, gmdj.GMDJ, gmdj.GMDJOpt} {
		res, err := db.QueryStrategy(subquery, s)
		if err != nil {
			log.Fatal(err)
		}
		var hours []any
		for _, row := range res.Rows {
			hours = append(hours, row[0])
		}
		fmt.Printf("  %-8v -> %v\n", s, hours)
	}

	// Show the plan the optimized GMDJ strategy runs.
	plan, err := db.Explain(subquery, gmdj.GMDJOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGMDJOpt physical plan:")
	fmt.Print(plan)

	// Query governance: budgets and cancellation. A budget bounds every
	// query on the connection; errors are typed, so callers can tell a
	// governed abort from a genuine failure.
	db.SetBudget(gmdj.Budget{Timeout: 5 * time.Second, MaxRows: 2})
	_, err = db.Query(query)
	switch {
	case errors.Is(err, gmdj.ErrRowBudget):
		fmt.Println("\nGovernance: row budget aborted the query, as configured:")
		fmt.Println("  ", err)
	case err != nil:
		log.Fatal(err)
	}
	db.SetBudget(gmdj.Budget{}) // lift the budget again

	// Per-call cancellation via context: QueryContext aborts mid-scan
	// when the context is done and reports gmdj.ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, query); errors.Is(err, gmdj.ErrCanceled) {
		fmt.Println("Governance: canceled context aborted the query:")
		fmt.Println("  ", err)
	}
}
