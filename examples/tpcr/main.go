// TPCR: decision-support subqueries on the TPC-R-like warehouse — the
// kind of workload the paper benchmarks (Figures 2 and 3), with timing
// across strategies and an index-sensitivity check.
package main

import (
	"fmt"
	"log"
	"time"

	gmdj "github.com/olaplab/gmdj"
)

func main() {
	db := gmdj.OpenTPCRSample(2.0) // 2000 customers, 20k orders, 80k lineitems

	// Figure 2's query class: customers with at least one very large
	// order (EXISTS).
	exists := `
	  SELECT c.c_custkey FROM customer c
	  WHERE EXISTS (SELECT * FROM orders o
	                WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 400000)`

	// Figure 3's query class: comparison against a correlated
	// aggregate — customers whose balance (×25) beats their average
	// order price.
	aggCmp := `
	  SELECT c.c_custkey FROM customer c
	  WHERE c.c_acctbal * 25 > (SELECT AVG(o.o_totalprice) FROM orders o
	                            WHERE o.o_custkey = c.c_custkey)`

	// A NOT IN over a filtered projection (≠-ALL under the hood).
	notIn := `
	  SELECT c.c_custkey FROM customer c
	  WHERE c.c_custkey NOT IN (SELECT o.o_custkey FROM orders o
	                            WHERE o.o_orderstatus = 'F')`

	run := func(name, q string) {
		fmt.Printf("%s:\n", name)
		for _, s := range []gmdj.Strategy{gmdj.Native, gmdj.Unnest, gmdj.GMDJ, gmdj.GMDJOpt} {
			start := time.Now()
			res, err := db.QueryStrategy(q, s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8v: %5d rows in %8v\n", s, res.Len(), time.Since(start).Round(time.Microsecond))
		}
	}

	run("EXISTS (Figure 2 class)", exists)
	run("aggregate comparison (Figure 3 class)", aggCmp)
	run("NOT IN", notIn)

	// Index sensitivity: native depends on the o_custkey index, GMDJ
	// does not (the paper's Figure 5 point).
	if err := db.BuildHashIndex("orders", "o_custkey"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith hash index on orders.o_custkey:")
	run("EXISTS again", exists)

	if err := db.DropIndexes("orders"); err != nil {
		log.Fatal(err)
	}
	db.SetUseIndexes(false)
	fmt.Println("\nwith indexes dropped (GMDJ should be unaffected):")
	run("EXISTS again", exists)
}
