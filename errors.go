package gmdj

import (
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/mem"
	"github.com/olaplab/gmdj/internal/spill"
	"github.com/olaplab/gmdj/internal/storage"
)

// Catalog and statement errors. Every error returned from the public
// API for these conditions matches the corresponding sentinel with
// errors.Is, regardless of how much context wraps it.
var (
	// ErrTableExists: CREATE TABLE (SQL or CreateTable) named a table
	// that is already registered.
	ErrTableExists = storage.ErrTableExists
	// ErrUnknownTable: a statement referenced a table that does not
	// exist.
	ErrUnknownTable = storage.ErrUnknownTable
	// ErrBadParam: a statement's placeholders and the supplied
	// arguments disagree — wrong count, an unsupported Go value, or a
	// query containing placeholders executed without a prepared
	// statement.
	ErrBadParam = expr.ErrBadParam
)

// Memory-adaptive execution errors (see WithMemoryLimit).
var (
	// ErrSpillIO: a disk operation on spilled operator state failed —
	// writing a partition (e.g. ENOSPC, short write) or reading one back
	// (I/O error, checksum mismatch). The query is aborted and its spill
	// files are removed; the database itself is unaffected.
	ErrSpillIO = spill.ErrSpillIO
	// ErrAdmissionTimeout: the query waited longer than the admission
	// timeout for memory-pool capacity and was shed without running.
	// Retry when concurrent load subsides, or raise the limit.
	ErrAdmissionTimeout = mem.ErrAdmissionTimeout
	// ErrClosed: DB.Close ran while the query was queued for memory
	// admission; the wait could never be satisfied, so the query was
	// shed instead of deadlocking. Queries started after Close run
	// unaccounted (purely in-memory) and do not see this error.
	ErrClosed = mem.ErrPoolClosed
)

// Durable-storage errors (see WithDataDir).
var (
	// ErrSegmentCorrupt: a durable segment failed checksum or structural
	// verification, or the query touched a table quarantined by
	// recovery. Unlike ErrSpillIO it is not retryable — the bytes on
	// disk are wrong and stay wrong until the table is re-created (which
	// rewrites its segment at the next checkpoint).
	ErrSegmentCorrupt = storage.ErrSegmentCorrupt
)
