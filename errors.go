package gmdj

import (
	"github.com/olaplab/gmdj/internal/expr"
	"github.com/olaplab/gmdj/internal/storage"
)

// Catalog and statement errors. Every error returned from the public
// API for these conditions matches the corresponding sentinel with
// errors.Is, regardless of how much context wraps it.
var (
	// ErrTableExists: CREATE TABLE (SQL or CreateTable) named a table
	// that is already registered.
	ErrTableExists = storage.ErrTableExists
	// ErrUnknownTable: a statement referenced a table that does not
	// exist.
	ErrUnknownTable = storage.ErrUnknownTable
	// ErrBadParam: a statement's placeholders and the supplied
	// arguments disagree — wrong count, an unsupported Go value, or a
	// query containing placeholders executed without a prepared
	// statement.
	ErrBadParam = expr.ErrBadParam
)
